open Ast

exception Type_error of string

let err fmt = Format.kasprintf (fun msg -> raise (Type_error msg)) fmt

let ty_name = function Tint -> "int" | Tfloat -> "float"

type env = {
  prog : program;
  globals : (string, ty) Hashtbl.t;
  arrays : (string, ty * int) Hashtbl.t;
  funcs : (string, param list * ty option) Hashtbl.t;
  slots : (string, int) Hashtbl.t;
  (* per function: params and locals, with locals also kept in order *)
  scopes : (string, (string, ty) Hashtbl.t) Hashtbl.t;
  local_order : (string, (string * ty) list) Hashtbl.t;
}

let program env = env.prog

let global_ty env name =
  match Hashtbl.find_opt env.globals name with
  | Some ty -> ty
  | None -> err "unknown global %s" name

let array_info env name =
  match Hashtbl.find_opt env.arrays name with
  | Some info -> info
  | None -> err "unknown array %s" name

let func_sig env name =
  match Hashtbl.find_opt env.funcs name with
  | Some s -> s
  | None -> err "unknown function %s" name

let fn_slot env name = Hashtbl.find env.slots name

let locals env fname =
  match Hashtbl.find_opt env.local_order fname with
  | Some l -> l
  | None -> err "unknown function %s" fname

let local_ty env ~fname name =
  match Hashtbl.find_opt env.scopes fname with
  | None -> err "unknown function %s" fname
  | Some scope -> (
    match Hashtbl.find_opt scope name with
    | Some ty -> ty
    | None -> err "%s: unknown variable %s" fname name)

(* Hoist all Let-declared locals (and For induction variables) of a body. *)
let collect_locals fname params body =
  let scope = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun p ->
      if Hashtbl.mem scope p.p_name then
        err "%s: duplicate parameter %s" fname p.p_name;
      Hashtbl.add scope p.p_name p.p_ty)
    params;
  let declare name ty ~induction =
    match Hashtbl.find_opt scope name with
    | Some existing ->
      if induction then begin
        if existing <> Tint then
          err "%s: for-variable %s must be int, is %s" fname name
            (ty_name existing)
      end
      else err "%s: duplicate local %s" fname name
    | None ->
      Hashtbl.add scope name ty;
      order := (name, ty) :: !order
  in
  let rec walk = function
    | Let (name, ty, _) -> declare name ty ~induction:false
    | For (var, _, _, body) ->
      declare var Tint ~induction:true;
      List.iter walk body
    | If (_, a, b) ->
      List.iter walk a;
      List.iter walk b
    | While (_, body) -> List.iter walk body
    | Switch (_, cases, default) ->
      List.iter (fun (_, b) -> List.iter walk b) cases;
      List.iter walk default
    | Assign _ | Global_assign _ | Store _ | Expr _ | Return _ | Break
    | Continue | Output _ ->
      ()
  in
  List.iter walk body;
  (scope, List.rev !order)

let rec type_expr_in env fname scope expr =
  let recur = type_expr_in env fname scope in
  let expect what wanted e =
    let got = recur e in
    if got <> wanted then
      err "%s: %s must be %s, is %s" fname what (ty_name wanted) (ty_name got)
  in
  let same_type what a b =
    let ta = recur a and tb = recur b in
    if ta <> tb then
      err "%s: %s mixes %s and %s" fname what (ty_name ta) (ty_name tb);
    ta
  in
  match expr with
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Var name -> (
    match Hashtbl.find_opt scope name with
    | Some ty -> ty
    | None -> err "%s: unknown variable %s" fname name)
  | Global name -> global_ty env name
  | Load (arr, idx) ->
    let ty, _size = array_info env arr in
    expect (Printf.sprintf "index into %s" arr) Tint idx;
    ty
  | Unop (Neg, e) -> recur e
  | Unop (Lnot, e) ->
    expect "operand of !" Tint e;
    Tint
  | Unop ((Fsqrt | Fabs | Fexp | Flog | Fsin | Fcos), e) ->
    expect "float intrinsic operand" Tfloat e;
    Tfloat
  | Binop ((Add | Sub | Mul | Div | Imin | Imax), a, b) ->
    same_type "arithmetic" a b
  | Binop ((Rem | Band | Bor | Bxor | Shl | Shr), a, b) ->
    expect "integer operator operand" Tint a;
    expect "integer operator operand" Tint b;
    Tint
  | Cmp (_, a, b) ->
    let (_ : ty) = same_type "comparison" a b in
    Tint
  | And (a, b) | Or (a, b) ->
    expect "boolean operand" Tint a;
    expect "boolean operand" Tint b;
    Tint
  | Cond (c, a, b) ->
    expect "ternary condition" Tint c;
    same_type "ternary arms" a b
  | Call (name, args) -> (
    let params, ret = func_sig env name in
    check_args env fname scope name params args;
    match ret with
    | Some ty -> ty
    | None -> err "%s: void call to %s used as a value" fname name)
  | Call_ptr (f, args, ret) -> (
    expect "function-pointer value" Tint f;
    List.iter (fun a -> ignore (recur a)) args;
    match ret with
    | Some ty -> ty
    | None -> err "%s: void indirect call used as a value" fname)
  | Fnptr name ->
    if not (Hashtbl.mem env.slots name) then
      err "%s: function %s is not in the pointer table" fname name;
    Tint
  | Cast (ty, e) ->
    let (_ : ty) = recur e in
    ty

and check_args env fname scope callee params args =
  if List.length params <> List.length args then
    err "%s: call to %s passes %d args, expects %d" fname callee
      (List.length args) (List.length params);
  List.iter2
    (fun p a ->
      let got = type_expr_in env fname scope a in
      if got <> p.p_ty then
        err "%s: argument %s of %s must be %s, is %s" fname p.p_name callee
          (ty_name p.p_ty) (ty_name got))
    params args

let type_expr env ~fname expr =
  match Hashtbl.find_opt env.scopes fname with
  | None -> err "unknown function %s" fname
  | Some scope -> type_expr_in env fname scope expr

let check_stmt env fname scope f_ret =
  let texpr = type_expr_in env fname scope in
  let expect_int what e =
    let got = texpr e in
    if got <> Tint then err "%s: %s must be int, is %s" fname what (ty_name got)
  in
  let rec stmt ~in_loop = function
    | Let (name, ty, init) -> (
      match Hashtbl.find_opt scope name with
      | None -> err "%s: local %s was not collected" fname name
      | Some declared ->
        if declared <> ty then
          err "%s: local %s declared both %s and %s" fname name
            (ty_name declared) (ty_name ty);
        let got = texpr init in
        if got <> declared then
          err "%s: initializer of %s (%s) has type %s" fname name
            (ty_name declared) (ty_name got))
    | Assign (name, e) -> (
      match Hashtbl.find_opt scope name with
      | None -> err "%s: unknown variable %s" fname name
      | Some wanted ->
        let got = texpr e in
        if got <> wanted then
          err "%s: assignment to %s (%s) from %s" fname name (ty_name wanted)
            (ty_name got))
    | Global_assign (name, e) ->
      let wanted = global_ty env name in
      let got = texpr e in
      if got <> wanted then
        err "%s: assignment to global %s (%s) from %s" fname name
          (ty_name wanted) (ty_name got)
    | Store (arr, idx, value) ->
      let wanted, _ = array_info env arr in
      expect_int (Printf.sprintf "index into %s" arr) idx;
      let got = texpr value in
      if got <> wanted then
        err "%s: store to %s (%s) from %s" fname arr (ty_name wanted)
          (ty_name got)
    | If (c, a, b) ->
      expect_int "if condition" c;
      List.iter (stmt ~in_loop) a;
      List.iter (stmt ~in_loop) b
    | While (c, body) ->
      expect_int "while condition" c;
      List.iter (stmt ~in_loop:true) body
    | For (var, lo, hi, body) ->
      (match Hashtbl.find_opt scope var with
      | Some Tint -> ()
      | Some Tfloat -> err "%s: for-variable %s must be int" fname var
      | None -> err "%s: for-variable %s not collected" fname var);
      expect_int "for bound" lo;
      expect_int "for bound" hi;
      List.iter (stmt ~in_loop:true) body
    | Switch (e, cases, default) ->
      expect_int "switch selector" e;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (labels, body) ->
          if labels = [] then err "%s: switch case with no labels" fname;
          List.iter
            (fun l ->
              if Hashtbl.mem seen l then
                err "%s: duplicate switch label %d" fname l;
              Hashtbl.add seen l ())
            labels;
          List.iter (stmt ~in_loop) body)
        cases;
      List.iter (stmt ~in_loop) default
    | Expr (Call (name, args)) ->
      let params, _ret = func_sig env name in
      check_args env fname scope name params args
    | Expr (Call_ptr (f, args, _ret)) ->
      expect_int "function-pointer value" f;
      List.iter (fun a -> ignore (texpr a)) args
    | Expr e -> ignore (texpr e)
    | Return None ->
      if f_ret <> None then err "%s: return without a value" fname
    | Return (Some e) -> (
      match f_ret with
      | None -> err "%s: returning a value from a procedure" fname
      | Some wanted ->
        let got = texpr e in
        if got <> wanted then
          err "%s: returning %s, expected %s" fname (ty_name got)
            (ty_name wanted))
    | Break -> if not in_loop then err "%s: break outside a loop" fname
    | Continue -> if not in_loop then err "%s: continue outside a loop" fname
    | Output e -> ignore (texpr e)
  in
  stmt

let check (prog : program) =
  let env =
    {
      prog;
      globals = Hashtbl.create 16;
      arrays = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      slots = Hashtbl.create 16;
      scopes = Hashtbl.create 16;
      local_order = Hashtbl.create 16;
    }
  in
  List.iter
    (fun gd ->
      if Hashtbl.mem env.globals gd.g_name then
        err "duplicate global %s" gd.g_name;
      Hashtbl.add env.globals gd.g_name gd.g_ty)
    prog.globals;
  List.iter
    (fun ad ->
      if Hashtbl.mem env.arrays ad.a_name then err "duplicate array %s" ad.a_name;
      if ad.a_size <= 0 then err "array %s has size %d" ad.a_name ad.a_size;
      Hashtbl.add env.arrays ad.a_name (ad.a_ty, ad.a_size))
    prog.arrays;
  List.iter
    (fun fd ->
      if Hashtbl.mem env.funcs fd.f_name then
        err "duplicate function %s" fd.f_name;
      Hashtbl.add env.funcs fd.f_name (fd.f_params, fd.f_ret))
    prog.funcs;
  List.iteri
    (fun slot name ->
      if not (Hashtbl.mem env.funcs name) then
        err "fn_table entry %s is not a function" name;
      if Hashtbl.mem env.slots name then err "fn_table repeats %s" name;
      Hashtbl.add env.slots name slot)
    prog.fn_table;
  if not (Hashtbl.mem env.funcs prog.entry) then
    err "entry function %s is not defined" prog.entry;
  List.iter
    (fun fd ->
      let scope, order = collect_locals fd.f_name fd.f_params fd.f_body in
      Hashtbl.add env.scopes fd.f_name scope;
      Hashtbl.add env.local_order fd.f_name order;
      let check1 = check_stmt env fd.f_name scope fd.f_ret in
      List.iter (check1 ~in_loop:false) fd.f_body)
    prog.funcs;
  env
