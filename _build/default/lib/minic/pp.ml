open Ast

let unop_name = function
  | Neg -> "-"
  | Lnot -> "!"
  | Fsqrt -> "sqrt"
  | Fabs -> "fabs"
  | Fexp -> "exp"
  | Flog -> "log"
  | Fsin -> "sin"
  | Fcos -> "cos"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Imin -> "`min`"
  | Imax -> "`max`"

let cmp_name = function
  | Ceq -> "=="
  | Cne -> "!="
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

let rec expr_to_string = function
  | Int k -> string_of_int k
  | Float x -> Printf.sprintf "%g" x
  | Var v -> v
  | Global g -> "@" ^ g
  | Load (a, i) -> Printf.sprintf "%s[%s]" a (expr_to_string i)
  | Unop (((Neg | Lnot) as op), e) ->
    Printf.sprintf "%s(%s)" (unop_name op) (expr_to_string e)
  | Unop (op, e) -> Printf.sprintf "%s(%s)" (unop_name op) (expr_to_string e)
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_name op)
      (expr_to_string b)
  | Cmp (c, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (cmp_name c) (expr_to_string b)
  | And (a, b) ->
    Printf.sprintf "(%s && %s)" (expr_to_string a) (expr_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (expr_to_string a) (expr_to_string b)
  | Cond (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a)
      (expr_to_string b)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Call_ptr (f, args, _) ->
    Printf.sprintf "(*%s)(%s)" (expr_to_string f)
      (String.concat ", " (List.map expr_to_string args))
  | Fnptr f -> "&" ^ f
  | Cast (Tint, e) -> Printf.sprintf "(int)(%s)" (expr_to_string e)
  | Cast (Tfloat, e) -> Printf.sprintf "(float)(%s)" (expr_to_string e)

let ty_name = function Tint -> "int" | Tfloat -> "float"

let rec stmt_to_string ?(indent = 0) s =
  let pad = String.make indent ' ' in
  let block b = block_to_string ~indent:(indent + 2) b in
  match s with
  | Let (x, ty, e) ->
    Printf.sprintf "%s%s %s = %s;" pad (ty_name ty) x (expr_to_string e)
  | Assign (x, e) -> Printf.sprintf "%s%s = %s;" pad x (expr_to_string e)
  | Global_assign (g, e) -> Printf.sprintf "%s@%s = %s;" pad g (expr_to_string e)
  | Store (a, i, v) ->
    Printf.sprintf "%s%s[%s] = %s;" pad a (expr_to_string i) (expr_to_string v)
  | If (c, a, []) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s}" pad (expr_to_string c) (block a) pad
  | If (c, a, b) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" pad (expr_to_string c)
      (block a) pad (block b) pad
  | While (c, body) ->
    Printf.sprintf "%swhile (%s) {\n%s\n%s}" pad (expr_to_string c) (block body)
      pad
  | For (v, lo, hi, body) ->
    Printf.sprintf "%sfor (%s = %s; %s < %s; %s++) {\n%s\n%s}" pad v
      (expr_to_string lo) v (expr_to_string hi) v (block body) pad
  | Switch (e, cases, default) ->
    let case_text =
      String.concat "\n"
        (List.map
           (fun (labels, body) ->
             Printf.sprintf "%s  case %s:\n%s" pad
               (String.concat ", " (List.map string_of_int labels))
               (block_to_string ~indent:(indent + 4) body))
           cases)
    in
    Printf.sprintf "%sswitch (%s) {\n%s\n%s  default:\n%s\n%s}" pad
      (expr_to_string e) case_text pad
      (block_to_string ~indent:(indent + 4) default)
      pad
  | Expr e -> Printf.sprintf "%s%s;" pad (expr_to_string e)
  | Return None -> pad ^ "return;"
  | Return (Some e) -> Printf.sprintf "%sreturn %s;" pad (expr_to_string e)
  | Break -> pad ^ "break;"
  | Continue -> pad ^ "continue;"
  | Output e -> Printf.sprintf "%soutput %s;" pad (expr_to_string e)

and block_to_string ?(indent = 0) b =
  String.concat "\n" (List.map (stmt_to_string ~indent) b)

let program_to_string (p : program) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "// program %s (entry %s)\n" p.prog_name p.entry);
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "%s @%s = %g;\n" (ty_name g.g_ty) g.g_name g.g_init))
    p.globals;
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s[%d];\n" (ty_name a.a_ty) a.a_name a.a_size))
    p.arrays;
  List.iter
    (fun f ->
      let params =
        String.concat ", "
          (List.map (fun p -> ty_name p.p_ty ^ " " ^ p.p_name) f.f_params)
      in
      let ret = match f.f_ret with None -> "void" | Some ty -> ty_name ty in
      Buffer.add_string buf
        (Printf.sprintf "%s %s(%s) {\n%s\n}\n" ret f.f_name params
           (block_to_string ~indent:2 f.f_body)))
    p.funcs;
  Buffer.contents buf
