(** Pretty-printer for MiniC programs, in a C-like concrete syntax.
    Used for debugging, test counterexamples, and documentation. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val block_to_string : ?indent:int -> Ast.block -> string
val program_to_string : Ast.program -> string
