(** Literal constant folding — the "classical optimization" subset that the
    paper's measured builds kept enabled.

    Folding only combines literals and applies algebraic identities whose
    rewrite cannot change which statements execute ([x + 0], [x * 1], ...).
    It never substitutes globals and never deletes statements or branches:
    branch removal belongs to {!Passes.dce}, which the paper's measured
    configuration had switched off (Table 1 quantifies what that leaves
    behind). *)

val expr : Ast.expr -> Ast.expr
(** Fold one expression bottom-up. *)

val block : Ast.block -> Ast.block
(** Fold every expression of a block, leaving statement structure intact. *)

val program : Ast.program -> Ast.program
