open Ast
module I = Fisher92_ir.Insn
module P = Fisher92_ir.Program

let scalar_array_name name = "$" ^ name

(* Pre-resolution instruction stream: labels and label-relative transfers
   are patched into pc-relative form once the whole function is emitted. *)
type item =
  | Ins of I.insn
  | Lbl of int
  | Br_to of I.ireg * int * int  (* cond reg, label, site id *)
  | Jump_to of int

type loop_ctx = { l_continue : int; l_break : int }

type fctx = {
  env : Typecheck.env;
  fname : string;
  fid : int;
  func_id : string -> int;
  array_id : string -> int;
  slot_of : string -> int;
  fresh_site : string -> int;  (* takes a label hint, returns a site id *)
  ivar : (string, int) Hashtbl.t;
  fvar : (string, int) Hashtbl.t;
  mutable items : item list;  (* reversed *)
  mutable next_label : int;
  base_i : int;  (* first int temp register *)
  base_f : int;
  mutable next_i : int;
  mutable next_f : int;
  mutable max_i : int;
  mutable max_f : int;
  mutable stmt_counter : int;
}

let emit ctx insn = ctx.items <- Ins insn :: ctx.items

let fresh_label ctx =
  let l = ctx.next_label in
  ctx.next_label <- l + 1;
  l

let place ctx label = ctx.items <- Lbl label :: ctx.items
let jump_to ctx label = ctx.items <- Jump_to label :: ctx.items

let branch_to ctx cond label ~hint =
  let site = ctx.fresh_site (Printf.sprintf "%s#%d:%s" ctx.fname ctx.stmt_counter hint) in
  ctx.items <- Br_to (cond, label, site) :: ctx.items

let alloc_i ctx =
  let r = ctx.next_i in
  ctx.next_i <- r + 1;
  if ctx.next_i > ctx.max_i then ctx.max_i <- ctx.next_i;
  r

let alloc_f ctx =
  let r = ctx.next_f in
  ctx.next_f <- r + 1;
  if ctx.next_f > ctx.max_f then ctx.max_f <- ctx.next_f;
  r

let with_temps ctx body =
  let si = ctx.next_i and sf = ctx.next_f in
  body ();
  ctx.next_i <- si;
  ctx.next_f <- sf

let expr_ty ctx e = Typecheck.type_expr ctx.env ~fname:ctx.fname e

let ibin_of = function
  | Add -> I.Add
  | Sub -> I.Sub
  | Mul -> I.Mul
  | Div -> I.Div
  | Rem -> I.Rem
  | Band -> I.And
  | Bor -> I.Or
  | Bxor -> I.Xor
  | Shl -> I.Shl
  | Shr -> I.Shr
  | Imin -> I.Min
  | Imax -> I.Max

let fbin_of = function
  | Add -> I.Fadd
  | Sub -> I.Fsub
  | Mul -> I.Fmul
  | Div -> I.Fdiv
  | Imin -> I.Fmin
  | Imax -> I.Fmax
  | Rem | Band | Bor | Bxor | Shl | Shr ->
    invalid_arg "Lower.fbin_of: integer-only operator on floats"

let cmp_of = function
  | Ceq -> I.Eq
  | Cne -> I.Ne
  | Clt -> I.Lt
  | Cle -> I.Le
  | Cgt -> I.Gt
  | Cge -> I.Ge

let negate_cmp = function
  | Ceq -> Cne
  | Cne -> Ceq
  | Clt -> Cge
  | Cle -> Cgt
  | Cgt -> Cle
  | Cge -> Clt

(* An expression already known to evaluate to 0 or 1, sparing an extra
   normalization when used as a boolean. *)
let rec is_boolish = function
  | Cmp _ | And _ | Or _ | Unop (Lnot, _) -> true
  | Int (0 | 1) -> true
  | Cond (_, a, b) -> is_boolish a && is_boolish b
  | _ -> false

let rec eval_int ?dst ctx e : I.ireg =
  let into dst_opt make =
    let d = match dst_opt with Some d -> d | None -> alloc_i ctx in
    make d;
    d
  in
  match e with
  | Int k -> into dst (fun d -> emit ctx (I.Iconst (d, k)))
  | Var name -> (
    let home = Hashtbl.find ctx.ivar name in
    match dst with
    | None -> home
    | Some d ->
      if d <> home then emit ctx (I.Imov (d, home));
      d)
  | Global name ->
    let aid = ctx.array_id (scalar_array_name name) in
    let ridx = alloc_i ctx in
    emit ctx (I.Iconst (ridx, 0));
    into dst (fun d -> emit ctx (I.Iload (d, aid, ridx)))
  | Load (arr, idx) ->
    let aid = ctx.array_id arr in
    let ridx = eval_int ctx idx in
    into dst (fun d -> emit ctx (I.Iload (d, aid, ridx)))
  | Unop (Neg, a) ->
    let ra = eval_int ctx a in
    into dst (fun d -> emit ctx (I.Ineg (d, ra)))
  | Unop (Lnot, a) ->
    let ra = eval_int ctx a in
    into dst (fun d -> emit ctx (I.Inot (d, ra)))
  | Unop ((Fsqrt | Fabs | Fexp | Flog | Fsin | Fcos), _) ->
    invalid_arg "Lower.eval_int: float intrinsic in int context"
  | Binop (op, a, Int k) when op <> Imin && op <> Imax ->
    let ra = eval_int ctx a in
    into dst (fun d -> emit ctx (I.Ibini (ibin_of op, d, ra, k)))
  | Binop (op, a, b) ->
    let ra = eval_int ctx a in
    let rb = eval_int ctx b in
    into dst (fun d -> emit ctx (I.Ibin (ibin_of op, d, ra, rb)))
  | Cmp (c, a, b) -> (
    match expr_ty ctx a with
    | Tint ->
      let ra = eval_int ctx a in
      let rb = eval_int ctx b in
      into dst (fun d -> emit ctx (I.Icmp (cmp_of c, d, ra, rb)))
    | Tfloat ->
      let ra = eval_float ctx a in
      let rb = eval_float ctx b in
      into dst (fun d -> emit ctx (I.Fcmp (cmp_of c, d, ra, rb))))
  | And (a, b) ->
    (* d <- a short-circuit-and b, with C semantics: b unevaluated if a=0 *)
    let d = match dst with Some d -> d | None -> alloc_i ctx in
    let l_false = fresh_label ctx and l_end = fresh_label ctx in
    branch_if_false ctx a l_false ~hint:"&&";
    let rb = eval_bool ctx b in
    if rb <> d then emit ctx (I.Imov (d, rb));
    jump_to ctx l_end;
    place ctx l_false;
    emit ctx (I.Iconst (d, 0));
    place ctx l_end;
    d
  | Or (a, b) ->
    let d = match dst with Some d -> d | None -> alloc_i ctx in
    let l_true = fresh_label ctx and l_end = fresh_label ctx in
    branch_if_true ctx a l_true ~hint:"||";
    let rb = eval_bool ctx b in
    if rb <> d then emit ctx (I.Imov (d, rb));
    jump_to ctx l_end;
    place ctx l_true;
    emit ctx (I.Iconst (d, 1));
    place ctx l_end;
    d
  | Cond (c, a, b) when is_pure a && is_pure b ->
    let rc = eval_int ctx c in
    let ra = eval_int ctx a in
    let rb = eval_int ctx b in
    into dst (fun d -> emit ctx (I.Select (d, rc, ra, rb)))
  | Cond (c, a, b) ->
    let d = match dst with Some d -> d | None -> alloc_i ctx in
    let l_else = fresh_label ctx and l_end = fresh_label ctx in
    branch_if_false ctx c l_else ~hint:"?:";
    let (_ : I.ireg) = eval_int ~dst:d ctx a in
    jump_to ctx l_end;
    place ctx l_else;
    let (_ : I.ireg) = eval_int ~dst:d ctx b in
    place ctx l_end;
    d
  | Call (name, args) -> lower_call ctx ~dst_int:dst name args
  | Call_ptr (f, args, _ret) -> lower_call_ptr ctx ~dst_int:dst f args
  | Fnptr name -> into dst (fun d -> emit ctx (I.Iconst (d, ctx.slot_of name)))
  | Cast (Tint, e) -> (
    match expr_ty ctx e with
    | Tint -> eval_int ?dst ctx e
    | Tfloat ->
      let rf = eval_float ctx e in
      into dst (fun d -> emit ctx (I.Ftoi (d, rf))))
  | Cast (Tfloat, _) -> invalid_arg "Lower.eval_int: float cast in int context"
  | Float _ -> invalid_arg "Lower.eval_int: float literal in int context"

and eval_float ?dst ctx e : I.freg =
  let into dst_opt make =
    let d = match dst_opt with Some d -> d | None -> alloc_f ctx in
    make d;
    d
  in
  match e with
  | Float x -> into dst (fun d -> emit ctx (I.Fconst (d, x)))
  | Var name -> (
    let home = Hashtbl.find ctx.fvar name in
    match dst with
    | None -> home
    | Some d ->
      if d <> home then emit ctx (I.Fmov (d, home));
      d)
  | Global name ->
    let aid = ctx.array_id (scalar_array_name name) in
    let ridx = alloc_i ctx in
    emit ctx (I.Iconst (ridx, 0));
    into dst (fun d -> emit ctx (I.Fload (d, aid, ridx)))
  | Load (arr, idx) ->
    let aid = ctx.array_id arr in
    let ridx = eval_int ctx idx in
    into dst (fun d -> emit ctx (I.Fload (d, aid, ridx)))
  | Unop (Neg, a) ->
    let ra = eval_float ctx a in
    into dst (fun d -> emit ctx (I.Funop (I.Fneg, d, ra)))
  | Unop (Fsqrt, a) -> float_unop ctx dst I.Fsqrt a
  | Unop (Fabs, a) -> float_unop ctx dst I.Fabs a
  | Unop (Fexp, a) -> float_unop ctx dst I.Fexp a
  | Unop (Flog, a) -> float_unop ctx dst I.Flog a
  | Unop (Fsin, a) -> float_unop ctx dst I.Fsin a
  | Unop (Fcos, a) -> float_unop ctx dst I.Fcos a
  | Unop (Lnot, _) -> invalid_arg "Lower.eval_float: ! in float context"
  | Binop (op, a, b) ->
    let ra = eval_float ctx a in
    let rb = eval_float ctx b in
    into dst (fun d -> emit ctx (I.Fbin (fbin_of op, d, ra, rb)))
  | Cond (c, a, b) when is_pure a && is_pure b ->
    let rc = eval_int ctx c in
    let ra = eval_float ctx a in
    let rb = eval_float ctx b in
    into dst (fun d -> emit ctx (I.Fselect (d, rc, ra, rb)))
  | Cond (c, a, b) ->
    let d = match dst with Some d -> d | None -> alloc_f ctx in
    let l_else = fresh_label ctx and l_end = fresh_label ctx in
    branch_if_false ctx c l_else ~hint:"?:";
    let (_ : I.freg) = eval_float ~dst:d ctx a in
    jump_to ctx l_end;
    place ctx l_else;
    let (_ : I.freg) = eval_float ~dst:d ctx b in
    place ctx l_end;
    d
  | Call (name, args) -> lower_call_f ctx ~dst_float:dst name args
  | Call_ptr (f, args, _ret) -> lower_call_ptr_f ctx ~dst_float:dst f args
  | Cast (Tfloat, e) -> (
    match expr_ty ctx e with
    | Tfloat -> eval_float ?dst ctx e
    | Tint ->
      let ri = eval_int ctx e in
      into dst (fun d -> emit ctx (I.Itof (d, ri))))
  | Cast (Tint, _) | Int _ | Cmp _ | And _ | Or _ | Fnptr _ ->
    invalid_arg "Lower.eval_float: int expression in float context"

and float_unop ctx dst op a =
  let ra = eval_float ctx a in
  let d = match dst with Some d -> d | None -> alloc_f ctx in
  emit ctx (I.Funop (op, d, ra));
  d

(* Evaluate an int expression known to be used as a boolean, producing a
   0/1 register (adds a normalization compare only when needed). *)
and eval_bool ctx e =
  let r = eval_int ctx e in
  if is_boolish e then r
  else begin
    let rz = alloc_i ctx in
    emit ctx (I.Iconst (rz, 0));
    let d = alloc_i ctx in
    emit ctx (I.Icmp (I.Ne, d, r, rz));
    d
  end

(* Conditional-branch generation that distributes short-circuit operators
   into branch cascades (one site per source-level test, like a C
   compiler). *)
and branch_if_true ctx e label ~hint =
  match e with
  | Cmp (Cne, a, Int 0) when expr_ty ctx a = Tint ->
    (* bnez: the machine branches on a nonzero register directly *)
    let r = eval_int ctx a in
    branch_to ctx r label ~hint
  | Cmp (Ceq, a, Int 0) when expr_ty ctx a = Tint ->
    let r = eval_int ctx a in
    let rn = alloc_i ctx in
    emit ctx (I.Inot (rn, r));
    branch_to ctx rn label ~hint
  | And (a, b) ->
    let l_skip = fresh_label ctx in
    branch_if_false ctx a l_skip ~hint;
    branch_if_true ctx b label ~hint;
    place ctx l_skip
  | Or (a, b) ->
    branch_if_true ctx a label ~hint;
    branch_if_true ctx b label ~hint
  | Unop (Lnot, a) -> branch_if_false ctx a label ~hint
  | _ ->
    let r = eval_int ctx e in
    branch_to ctx r label ~hint

and branch_if_false ctx e label ~hint =
  match e with
  | Cmp (Ceq, a, Int 0) when expr_ty ctx a = Tint ->
    let r = eval_int ctx a in
    branch_to ctx r label ~hint
  | Cmp (Cne, a, Int 0) when expr_ty ctx a = Tint ->
    let r = eval_int ctx a in
    let rn = alloc_i ctx in
    emit ctx (I.Inot (rn, r));
    branch_to ctx rn label ~hint
  | And (a, b) ->
    branch_if_false ctx a label ~hint;
    branch_if_false ctx b label ~hint
  | Or (a, b) ->
    let l_skip = fresh_label ctx in
    branch_if_true ctx a l_skip ~hint;
    branch_if_false ctx b label ~hint;
    place ctx l_skip
  | Unop (Lnot, a) -> branch_if_true ctx a label ~hint
  | Cmp (c, a, b) -> branch_if_true ctx (Cmp (negate_cmp c, a, b)) label ~hint
  | Int k -> if k = 0 then jump_to ctx label
  | _ ->
    let r = eval_int ctx e in
    let rn = alloc_i ctx in
    emit ctx (I.Inot (rn, r));
    branch_to ctx rn label ~hint

and lower_args ctx name args =
  let params, _ret = Typecheck.func_sig ctx.env name in
  let iargs = ref [] and fargs = ref [] in
  List.iter2
    (fun p a ->
      match p.p_ty with
      | Tint -> iargs := eval_int ctx a :: !iargs
      | Tfloat -> fargs := eval_float ctx a :: !fargs)
    params args;
  (List.rev !iargs, List.rev !fargs)

and lower_call ctx ~dst_int name args =
  let iargs, fargs = lower_args ctx name args in
  let d = match dst_int with Some d -> d | None -> alloc_i ctx in
  emit ctx (I.Call { callee = ctx.func_id name; iargs; fargs; dst = I.Int_dest d });
  d

and lower_call_f ctx ~dst_float name args =
  let iargs, fargs = lower_args ctx name args in
  let d = match dst_float with Some d -> d | None -> alloc_f ctx in
  emit ctx
    (I.Call { callee = ctx.func_id name; iargs; fargs; dst = I.Float_dest d });
  d

and lower_ptr_args ctx args =
  let iargs = ref [] and fargs = ref [] in
  List.iter
    (fun a ->
      match expr_ty ctx a with
      | Tint -> iargs := eval_int ctx a :: !iargs
      | Tfloat -> fargs := eval_float ctx a :: !fargs)
    args;
  (List.rev !iargs, List.rev !fargs)

and lower_call_ptr ctx ~dst_int f args =
  let rf = eval_int ctx f in
  let iargs, fargs = lower_ptr_args ctx args in
  let d = match dst_int with Some d -> d | None -> alloc_i ctx in
  emit ctx (I.Callind { table = rf; iargs; fargs; dst = I.Int_dest d });
  d

and lower_call_ptr_f ctx ~dst_float f args =
  let rf = eval_int ctx f in
  let iargs, fargs = lower_ptr_args ctx args in
  let d = match dst_float with Some d -> d | None -> alloc_f ctx in
  emit ctx (I.Callind { table = rf; iargs; fargs; dst = I.Float_dest d });
  d

(* Call for effect only (possibly void). *)
let lower_call_void ctx e =
  match e with
  | Call (name, args) ->
    let iargs, fargs = lower_args ctx name args in
    emit ctx (I.Call { callee = ctx.func_id name; iargs; fargs; dst = I.No_dest })
  | Call_ptr (f, args, _) ->
    let rf = eval_int ctx f in
    let iargs, fargs = lower_ptr_args ctx args in
    emit ctx (I.Callind { table = rf; iargs; fargs; dst = I.No_dest })
  | _ -> (
    (* evaluate for effect; result discarded *)
    match expr_ty ctx e with
    | Tint -> ignore (eval_int ctx e)
    | Tfloat -> ignore (eval_float ctx e))

let store_global ctx name value =
  let aid = ctx.array_id (scalar_array_name name) in
  match Typecheck.global_ty ctx.env name with
  | Tint ->
    let rv = eval_int ctx value in
    let ridx = alloc_i ctx in
    emit ctx (I.Iconst (ridx, 0));
    emit ctx (I.Istore (aid, ridx, rv))
  | Tfloat ->
    let rv = eval_float ctx value in
    let ridx = alloc_i ctx in
    emit ctx (I.Iconst (ridx, 0));
    emit ctx (I.Fstore (aid, ridx, rv))

let rec lower_stmt ctx ~loop stmt =
  ctx.stmt_counter <- ctx.stmt_counter + 1;
  with_temps ctx (fun () ->
      match stmt with
      | Let (name, _, init) | Assign (name, init) -> (
        match Hashtbl.find_opt ctx.ivar name with
        | Some home -> ignore (eval_int ~dst:home ctx init)
        | None -> ignore (eval_float ~dst:(Hashtbl.find ctx.fvar name) ctx init))
      | Global_assign (name, e) -> store_global ctx name e
      | Store (arr, idx, value) -> (
        let aid = ctx.array_id arr in
        let ridx = eval_int ctx idx in
        match expr_ty ctx value with
        | Tint ->
          let rv = eval_int ctx value in
          emit ctx (I.Istore (aid, ridx, rv))
        | Tfloat ->
          let rv = eval_float ctx value in
          emit ctx (I.Fstore (aid, ridx, rv)))
      | If (c, a, []) ->
        let l_end = fresh_label ctx in
        branch_if_false ctx c l_end ~hint:"if";
        lower_block ctx ~loop a;
        place ctx l_end
      | If (c, [], b) ->
        let l_end = fresh_label ctx in
        branch_if_true ctx c l_end ~hint:"if";
        lower_block ctx ~loop b;
        place ctx l_end
      | If (c, a, b) ->
        let l_else = fresh_label ctx and l_end = fresh_label ctx in
        branch_if_false ctx c l_else ~hint:"if";
        lower_block ctx ~loop a;
        jump_to ctx l_end;
        place ctx l_else;
        lower_block ctx ~loop b;
        place ctx l_end
      | While (c, body) ->
        (* Bottom-test: the back-edge branch is taken while iterating. *)
        let l_body = fresh_label ctx in
        let l_test = fresh_label ctx in
        let l_end = fresh_label ctx in
        jump_to ctx l_test;
        place ctx l_body;
        lower_block ctx ~loop:(Some { l_continue = l_test; l_break = l_end }) body;
        place ctx l_test;
        branch_if_true ctx c l_body ~hint:"while";
        place ctx l_end
      | For (var, lo, hi, body) ->
        let home = Hashtbl.find ctx.ivar var in
        ignore (eval_int ~dst:home ctx lo);
        let l_body = fresh_label ctx in
        let l_inc = fresh_label ctx in
        let l_test = fresh_label ctx in
        let l_end = fresh_label ctx in
        jump_to ctx l_test;
        place ctx l_body;
        lower_block ctx ~loop:(Some { l_continue = l_inc; l_break = l_end }) body;
        place ctx l_inc;
        emit ctx (I.Ibini (I.Add, home, home, 1));
        place ctx l_test;
        let rhi = eval_int ctx hi in
        let rc = alloc_i ctx in
        emit ctx (I.Icmp (I.Lt, rc, home, rhi));
        branch_to ctx rc l_body ~hint:"for";
        place ctx l_end
      | Switch (e, cases, default) ->
        (* Source-order cascade of equality tests, like the paper's
           compiler turning multi-way branches into linear ifs. *)
        let re = eval_int ctx e in
        let l_end = fresh_label ctx in
        let case_labels =
          List.map
            (fun (labels, _) ->
              let l_case = fresh_label ctx in
              List.iter
                (fun k ->
                  let rk = alloc_i ctx in
                  emit ctx (I.Iconst (rk, k));
                  let rc = alloc_i ctx in
                  emit ctx (I.Icmp (I.Eq, rc, re, rk));
                  branch_to ctx rc l_case ~hint:(Printf.sprintf "case%d" k))
                labels;
              l_case)
            cases
        in
        lower_block ctx ~loop default;
        jump_to ctx l_end;
        List.iter2
          (fun l_case (_, body) ->
            place ctx l_case;
            lower_block ctx ~loop body;
            jump_to ctx l_end)
          case_labels cases;
        place ctx l_end
      | Expr e -> lower_call_void ctx e
      | Return None -> emit ctx (I.Ret I.Ret_none)
      | Return (Some e) -> (
        match expr_ty ctx e with
        | Tint ->
          let r = eval_int ctx e in
          emit ctx (I.Ret (I.Ret_int r))
        | Tfloat ->
          let r = eval_float ctx e in
          emit ctx (I.Ret (I.Ret_float r)))
      | Break -> (
        match loop with
        | Some l -> jump_to ctx l.l_break
        | None -> invalid_arg "Lower: break outside loop")
      | Continue -> (
        match loop with
        | Some l -> jump_to ctx l.l_continue
        | None -> invalid_arg "Lower: continue outside loop")
      | Output e -> (
        match expr_ty ctx e with
        | Tint ->
          let r = eval_int ctx e in
          emit ctx (I.Output r)
        | Tfloat ->
          let r = eval_float ctx e in
          emit ctx (I.Foutput r)))

and lower_block ctx ~loop block = List.iter (lower_stmt ctx ~loop) block

(* Patch labels into pc targets and fill in site program counters. *)
let resolve items n_labels =
  let items = Array.of_list (List.rev items) in
  let label_pc = Array.make n_labels (-1) in
  let pc = ref 0 in
  Array.iter
    (function
      | Lbl l -> label_pc.(l) <- !pc
      | Ins _ | Br_to _ | Jump_to _ -> incr pc)
    items;
  let code = Array.make !pc I.Halt in
  let site_pcs = ref [] in
  let pc = ref 0 in
  Array.iter
    (function
      | Lbl _ -> ()
      | Ins insn ->
        code.(!pc) <- insn;
        incr pc
      | Br_to (cond, label, site) ->
        assert (label_pc.(label) >= 0);
        code.(!pc) <- I.Br { cond; target = label_pc.(label); site };
        site_pcs := (site, !pc) :: !site_pcs;
        incr pc
      | Jump_to label ->
        assert (label_pc.(label) >= 0);
        code.(!pc) <- I.Jump label_pc.(label);
        incr pc)
    items;
  (code, !site_pcs)

let lower (env : Typecheck.env) : P.t =
  let prog = Typecheck.program env in
  let func_ids = Hashtbl.create 16 in
  List.iteri (fun i fd -> Hashtbl.add func_ids fd.f_name i) prog.funcs;
  let array_ids = Hashtbl.create 16 in
  let array_decls = ref [] in
  let add_array name cls size init =
    Hashtbl.add array_ids name (Hashtbl.length array_ids);
    array_decls :=
      { P.aname = name; acls = cls; asize = size; ainit = init } :: !array_decls
  in
  List.iter
    (fun (a : Ast.array_decl) ->
      add_array a.a_name
        (match a.a_ty with Tint -> P.Cint | Tfloat -> P.Cfloat)
        a.a_size 0.0)
    prog.arrays;
  List.iter
    (fun (gd : Ast.global_decl) ->
      add_array (scalar_array_name gd.g_name)
        (match gd.g_ty with Tint -> P.Cint | Tfloat -> P.Cfloat)
        1 gd.g_init)
    prog.globals;
  let slot_table = Hashtbl.create 16 in
  List.iteri (fun i name -> Hashtbl.add slot_table name i) prog.fn_table;
  let sites = ref [] in
  let n_sites = ref 0 in
  let fresh_site label =
    let s = !n_sites in
    incr n_sites;
    sites := (s, label) :: !sites;
    s
  in
  (* s_func/s_pc are filled per function after resolution *)
  let site_infos = Hashtbl.create 64 in
  let funcs =
    List.mapi
      (fun fid (fd : fundecl) ->
        let ivar = Hashtbl.create 16 and fvar = Hashtbl.create 16 in
        let ni = ref 0 and nf = ref 0 in
        let bind name ty =
          match ty with
          | Tint ->
            Hashtbl.add ivar name !ni;
            incr ni
          | Tfloat ->
            Hashtbl.add fvar name !nf;
            incr nf
        in
        let n_iparams = ref 0 and n_fparams = ref 0 in
        List.iter
          (fun p ->
            bind p.p_name p.p_ty;
            match p.p_ty with
            | Tint -> incr n_iparams
            | Tfloat -> incr n_fparams)
          fd.f_params;
        List.iter (fun (name, ty) -> bind name ty) (Typecheck.locals env fd.f_name);
        let ctx =
          {
            env;
            fname = fd.f_name;
            fid;
            func_id =
              (fun name ->
                match Hashtbl.find_opt func_ids name with
                | Some id -> id
                | None -> invalid_arg ("Lower: unknown function " ^ name));
            array_id =
              (fun name ->
                match Hashtbl.find_opt array_ids name with
                | Some id -> id
                | None -> invalid_arg ("Lower: unknown array " ^ name));
            slot_of =
              (fun name ->
                match Hashtbl.find_opt slot_table name with
                | Some s -> s
                | None -> invalid_arg ("Lower: not in fn_table: " ^ name));
            fresh_site;
            ivar;
            fvar;
            items = [];
            next_label = 0;
            base_i = !ni;
            base_f = !nf;
            next_i = !ni;
            next_f = !nf;
            max_i = !ni;
            max_f = !nf;
            stmt_counter = 0;
          }
        in
        lower_block ctx ~loop:None fd.f_body;
        (* Guarantee a terminator on the fall-through path. *)
        (match fd.f_ret with
        | None -> emit ctx (I.Ret I.Ret_none)
        | Some Tint ->
          let r = alloc_i ctx in
          emit ctx (I.Iconst (r, 0));
          emit ctx (I.Ret (I.Ret_int r))
        | Some Tfloat ->
          let r = alloc_f ctx in
          emit ctx (I.Fconst (r, 0.0));
          emit ctx (I.Ret (I.Ret_float r)));
        let code, site_pcs = resolve ctx.items ctx.next_label in
        List.iter
          (fun (site, pc) -> Hashtbl.replace site_infos site (fid, pc))
          site_pcs;
        {
          P.fname = fd.f_name;
          n_iparams = !n_iparams;
          n_fparams = !n_fparams;
          n_iregs = max ctx.max_i 1;
          n_fregs = max ctx.max_f 1;
          code;
        })
      prog.funcs
  in
  let site_array =
    Array.init !n_sites (fun s ->
        let label = List.assoc s !sites in
        let s_func, s_pc =
          match Hashtbl.find_opt site_infos s with
          | Some fp -> fp
          | None -> (-1, -1)
        in
        { P.s_func; s_pc; s_label = label })
  in
  {
    P.pname = prog.prog_name;
    funcs = Array.of_list funcs;
    arrays = Array.of_list (List.rev !array_decls);
    func_table =
      Array.of_list (List.map (fun n -> Hashtbl.find func_ids n) prog.fn_table);
    entry = Hashtbl.find func_ids prog.entry;
    sites = site_array;
  }
