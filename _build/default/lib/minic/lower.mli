(** Code generation from typed MiniC to the RISC-like IR.

    Lowering mirrors the paper's Multiflow front end where it matters to the
    experiment:

    - short-circuit [&&]/[||] and multi-way [switch] become cascades of
      conditional branches, each with its own static branch site;
    - loops are bottom-tested (the back edge is a conditional branch that is
      taken while the loop repeats);
    - pure ternaries become branch-free [select] instructions (the Trace
      front ends did this select-conversion);
    - global scalars live in memory (one single-cell IR array per global,
      named ["$<global>"]), so a global access costs an address constant
      plus a load/store.

    Every conditional branch in the output carries a dense site id and a
    human-readable label recorded in [Program.sites]. *)

val lower : Typecheck.env -> Fisher92_ir.Program.t
(** Compile the checked program.  The result passes
    {!Fisher92_ir.Validate.check}. *)

val scalar_array_name : string -> string
(** IR array name holding a MiniC global scalar (["$" ^ name]). *)
