(** Abstract syntax of MiniC, the source language of the workload programs.

    MiniC models the C/FORTRAN subset the paper's programs were written in:
    two scalar types (int, float), named global scalars and global arrays as
    the only persistent state, function-scoped locals, structured control
    flow ([if]/[while]/[for]/[switch] with [break]/[continue]), direct calls
    and calls through function pointers.  The compiler lowers it to the IR
    the way the Multiflow front end lowered C: short-circuit booleans and
    [switch] become conditional-branch cascades; trivial conditionals may
    become [select] instructions. *)

type ty = Tint | Tfloat

type unop =
  | Neg  (** arithmetic negation, both types *)
  | Lnot  (** logical not: 1 if zero, else 0; int only *)
  | Fsqrt
  | Fabs
  | Fexp
  | Flog
  | Fsin
  | Fcos  (** float intrinsics *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem  (** int only *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr  (** int only *)
  | Imin
  | Imax  (** both types (lowered to min/max ops) *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type expr =
  | Int of int
  | Float of float
  | Var of string  (** local or parameter *)
  | Global of string  (** global scalar *)
  | Load of string * expr  (** array element *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cmp of cmp * expr * expr  (** 0/1-valued *)
  | And of expr * expr  (** short-circuit; 0/1-valued; compiles to a branch *)
  | Or of expr * expr  (** short-circuit; 0/1-valued; compiles to a branch *)
  | Cond of expr * expr * expr
      (** ternary; compiled branch-free (select) when both arms are pure *)
  | Call of string * expr list
  | Call_ptr of expr * expr list * ty option
      (** call through a function-pointer value (a slot index produced by
          [Fnptr]); the annotation is the result type, [None] = procedure *)
  | Fnptr of string  (** slot index of a function in the program's table *)
  | Cast of ty * expr  (** conversion to the named type *)

type stmt =
  | Let of string * ty * expr  (** declare a function-scoped local *)
  | Assign of string * expr  (** local or parameter *)
  | Global_assign of string * expr
  | Store of string * expr * expr  (** [Store (arr, index, value)] *)
  | If of expr * block * block
  | While of expr * block  (** bottom-test loop, like the paper's compiler *)
  | For of string * expr * expr * block
      (** [For (v, lo, hi, body)]: v from lo while v < hi, step 1 *)
  | Switch of expr * (int list * block) list * block
      (** cases (possibly multi-label) in source order, then default;
          lowered to a cascade of conditional branches *)
  | Expr of expr  (** expression for effect (calls) *)
  | Return of expr option
  | Break
  | Continue
  | Output of expr  (** append to the run's output stream *)

and block = stmt list

type param = { p_name : string; p_ty : ty }

type fundecl = {
  f_name : string;
  f_params : param list;
  f_ret : ty option;
  f_body : block;
}

type global_decl = { g_name : string; g_ty : ty; g_init : float }
(** scalar global; [g_init] is truncated for int globals *)

type array_decl = { a_name : string; a_ty : ty; a_size : int }

type program = {
  prog_name : string;
  globals : global_decl list;
  arrays : array_decl list;
  funcs : fundecl list;
  entry : string;
  fn_table : string list;
      (** functions reachable through pointers, in slot order *)
}

val is_pure : expr -> bool
(** No calls and no short-circuit operators: safe to evaluate eagerly and
    speculatively (loads are pure in MiniC; arrays cannot be unmapped, and
    bounds traps are a simulator artefact the optimizer may ignore, like a
    real ILP compiler speculating loads). *)

val expr_uses_var : string -> expr -> bool
(** Does the expression read the named local? *)

val expr_uses_global : string -> expr -> bool

val iter_exprs_stmt : (expr -> unit) -> stmt -> unit
(** Visit every top-level expression of a statement and, recursively, of
    its sub-blocks. *)

val map_block : (stmt -> stmt) -> block -> block
(** Bottom-up statement rewrite over nested blocks. *)
