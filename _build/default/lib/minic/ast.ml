type ty = Tint | Tfloat

type unop = Neg | Lnot | Fsqrt | Fabs | Fexp | Flog | Fsin | Fcos

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Imin
  | Imax

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type expr =
  | Int of int
  | Float of float
  | Var of string
  | Global of string
  | Load of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cmp of cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Cond of expr * expr * expr
  | Call of string * expr list
  | Call_ptr of expr * expr list * ty option
  | Fnptr of string
  | Cast of ty * expr

type stmt =
  | Let of string * ty * expr
  | Assign of string * expr
  | Global_assign of string * expr
  | Store of string * expr * expr
  | If of expr * block * block
  | While of expr * block
  | For of string * expr * expr * block
  | Switch of expr * (int list * block) list * block
  | Expr of expr
  | Return of expr option
  | Break
  | Continue
  | Output of expr

and block = stmt list

type param = { p_name : string; p_ty : ty }

type fundecl = {
  f_name : string;
  f_params : param list;
  f_ret : ty option;
  f_body : block;
}

type global_decl = { g_name : string; g_ty : ty; g_init : float }
type array_decl = { a_name : string; a_ty : ty; a_size : int }

type program = {
  prog_name : string;
  globals : global_decl list;
  arrays : array_decl list;
  funcs : fundecl list;
  entry : string;
  fn_table : string list;
}

let rec is_pure = function
  | Int _ | Float _ | Var _ | Global _ | Fnptr _ -> true
  | Load (_, e) | Unop (_, e) | Cast (_, e) -> is_pure e
  | Binop (_, a, b) | Cmp (_, a, b) -> is_pure a && is_pure b
  | Cond (c, a, b) -> is_pure c && is_pure a && is_pure b
  | And _ | Or _ | Call _ | Call_ptr _ -> false

let rec expr_uses_var name = function
  | Var v -> String.equal v name
  | Int _ | Float _ | Global _ | Fnptr _ -> false
  | Load (_, e) | Unop (_, e) | Cast (_, e) -> expr_uses_var name e
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    expr_uses_var name a || expr_uses_var name b
  | Cond (c, a, b) ->
    expr_uses_var name c || expr_uses_var name a || expr_uses_var name b
  | Call (_, args) -> List.exists (expr_uses_var name) args
  | Call_ptr (f, args, _) ->
    expr_uses_var name f || List.exists (expr_uses_var name) args

let rec expr_uses_global name = function
  | Global g -> String.equal g name
  | Int _ | Float _ | Var _ | Fnptr _ -> false
  | Load (_, e) | Unop (_, e) | Cast (_, e) -> expr_uses_global name e
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    expr_uses_global name a || expr_uses_global name b
  | Cond (c, a, b) ->
    expr_uses_global name c || expr_uses_global name a
    || expr_uses_global name b
  | Call (_, args) -> List.exists (expr_uses_global name) args
  | Call_ptr (f, args, _) ->
    expr_uses_global name f || List.exists (expr_uses_global name) args

let rec iter_exprs_stmt visit = function
  | Let (_, _, e) | Assign (_, e) | Global_assign (_, e) | Expr e | Output e ->
    visit e
  | Store (_, i, v) ->
    visit i;
    visit v
  | If (c, a, b) ->
    visit c;
    List.iter (iter_exprs_stmt visit) a;
    List.iter (iter_exprs_stmt visit) b
  | While (c, body) ->
    visit c;
    List.iter (iter_exprs_stmt visit) body
  | For (_, lo, hi, body) ->
    visit lo;
    visit hi;
    List.iter (iter_exprs_stmt visit) body
  | Switch (e, cases, default) ->
    visit e;
    List.iter (fun (_, b) -> List.iter (iter_exprs_stmt visit) b) cases;
    List.iter (iter_exprs_stmt visit) default
  | Return (Some e) -> visit e
  | Return None | Break | Continue -> ()

let rec map_block rewrite block = List.map (map_stmt rewrite) block

and map_stmt rewrite stmt =
  let stmt =
    match stmt with
    | If (c, a, b) -> If (c, map_block rewrite a, map_block rewrite b)
    | While (c, body) -> While (c, map_block rewrite body)
    | For (v, lo, hi, body) -> For (v, lo, hi, map_block rewrite body)
    | Switch (e, cases, default) ->
      Switch
        ( e,
          List.map (fun (ls, b) -> (ls, map_block rewrite b)) cases,
          map_block rewrite default )
    | Let _ | Assign _ | Global_assign _ | Store _ | Expr _ | Return _ | Break
    | Continue | Output _ ->
      stmt
  in
  rewrite stmt
