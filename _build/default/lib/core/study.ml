module Workload = Fisher92_workloads.Workload
module Registry = Fisher92_workloads.Registry
module Compile = Fisher92_minic.Compile
module Vm = Fisher92_vm.Vm
module Measure = Fisher92_metrics.Measure

type loaded = {
  workload : Workload.t;
  ir : Fisher92_ir.Program.t;
  runs : Measure.run list;
}

type t = { items : loaded list }

let compile_variant ?(dce = false) ?(inline = false) (w : Workload.t) =
  Compile.compile ~options:(Workload.compile_options ~dce ~inline w) w.w_program

let execute ir (d : Workload.dataset) ?config () =
  Vm.run ?config ir ~iargs:d.ds_iargs ~fargs:d.ds_fargs ~arrays:d.ds_arrays

let load ?workloads () =
  let workloads =
    match workloads with Some ws -> ws | None -> Registry.all ()
  in
  let items =
    List.map
      (fun (w : Workload.t) ->
        let ir = compile_variant w in
        let runs =
          List.map
            (fun (d : Workload.dataset) ->
              let result = execute ir d () in
              Measure.of_result ~program:w.w_name ~dataset:d.ds_name result)
            w.w_datasets
        in
        { workload = w; ir; runs })
      workloads
  in
  { items }

let items t = t.items

let find t name =
  List.find (fun l -> String.equal l.workload.Workload.w_name name) t.items
