lib/core/study.ml: Fisher92_ir Fisher92_metrics Fisher92_minic Fisher92_vm Fisher92_workloads List String
