lib/core/study.mli: Fisher92_ir Fisher92_metrics Fisher92_vm Fisher92_workloads
