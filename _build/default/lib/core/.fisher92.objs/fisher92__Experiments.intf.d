lib/core/experiments.mli: Fisher92_workloads Study
