(** The experiment driver: compile every workload with the paper's
    measured configuration (classical optimizations on, global DCE off,
    no inlining), run every dataset once, and keep the per-run
    measurements for the analysis passes.

    One [load] executes every (program, dataset) pair exactly once; all
    figures and tables are then derived from the stored profiles and
    counts, mirroring how the paper derived everything from one
    IFPROBBER + MFPixie collection per run. *)

type loaded = {
  workload : Fisher92_workloads.Workload.t;
  ir : Fisher92_ir.Program.t;  (** measured build (no DCE, no inlining) *)
  runs : Fisher92_metrics.Measure.run list;  (** one per dataset, in order *)
}

type t

val load : ?workloads:Fisher92_workloads.Workload.t list -> unit -> t
(** Compile and execute; default is the full registry.  Deterministic. *)

val items : t -> loaded list

val find : t -> string -> loaded
(** By workload name.  @raise Not_found. *)

val execute :
  Fisher92_ir.Program.t ->
  Fisher92_workloads.Workload.dataset ->
  ?config:Fisher92_vm.Vm.config ->
  unit ->
  Fisher92_vm.Vm.result
(** Run one dataset against a compiled image (used by the ablation
    experiments that need special builds or VM hooks). *)

val compile_variant :
  ?dce:bool -> ?inline:bool -> Fisher92_workloads.Workload.t ->
  Fisher92_ir.Program.t
(** Compile a workload with non-default pass settings (Table 1 uses
    [~dce:true], the inlining ablation [~inline:true]). *)
