lib/vm/vm.mli: Fisher92_ir
