lib/vm/vm.ml: Array Fisher92_ir Float Format Insn List Printf Program
