type ireg = int
type freg = int
type array_id = int
type func_id = int
type site = int

type ibin = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Min | Max
type fbin = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax
type funop = Fneg | Fabs | Fsqrt | Fexp | Flog | Fsin | Fcos
type cmp = Eq | Ne | Lt | Le | Gt | Ge
type dest = No_dest | Int_dest of ireg | Float_dest of freg
type ret = Ret_none | Ret_int of ireg | Ret_float of freg

type insn =
  | Iconst of ireg * int
  | Fconst of freg * float
  | Imov of ireg * ireg
  | Fmov of freg * freg
  | Ibin of ibin * ireg * ireg * ireg
  | Ibini of ibin * ireg * ireg * int
  | Inot of ireg * ireg
  | Ineg of ireg * ireg
  | Fbin of fbin * freg * freg * freg
  | Funop of funop * freg * freg
  | Icmp of cmp * ireg * ireg * ireg
  | Fcmp of cmp * ireg * freg * freg
  | Itof of freg * ireg
  | Ftoi of ireg * freg
  | Iload of ireg * array_id * ireg
  | Istore of array_id * ireg * ireg
  | Fload of freg * array_id * ireg
  | Fstore of array_id * ireg * freg
  | Select of ireg * ireg * ireg * ireg
  | Fselect of freg * ireg * freg * freg
  | Br of { cond : ireg; target : int; site : site }
  | Jump of int
  | Call of { callee : func_id; iargs : ireg list; fargs : freg list; dst : dest }
  | Callind of { table : ireg; iargs : ireg list; fargs : freg list; dst : dest }
  | Ret of ret
  | Output of ireg
  | Foutput of freg
  | Halt

type kind =
  | K_ialu
  | K_falu
  | K_mem
  | K_cbranch
  | K_jump
  | K_call
  | K_callind
  | K_ret
  | K_output
  | K_halt

let kind = function
  | Iconst _ | Imov _ | Ibin _ | Ibini _ | Inot _ | Ineg _ | Icmp _ | Fcmp _
  | Select _ ->
    K_ialu
  | Fconst _ | Fmov _ | Fbin _ | Funop _ | Itof _ | Ftoi _ | Fselect _ -> K_falu
  | Iload _ | Istore _ | Fload _ | Fstore _ -> K_mem
  | Br _ -> K_cbranch
  | Jump _ -> K_jump
  | Call _ -> K_call
  | Callind _ -> K_callind
  | Ret _ -> K_ret
  | Output _ | Foutput _ -> K_output
  | Halt -> K_halt

let kind_name = function
  | K_ialu -> "ialu"
  | K_falu -> "falu"
  | K_mem -> "mem"
  | K_cbranch -> "cbranch"
  | K_jump -> "jump"
  | K_call -> "call"
  | K_callind -> "callind"
  | K_ret -> "ret"
  | K_output -> "output"
  | K_halt -> "halt"

let all_kinds =
  [ K_ialu; K_falu; K_mem; K_cbranch; K_jump; K_call; K_callind; K_ret;
    K_output; K_halt ]

let branch_site = function Br { site; _ } -> Some site | _ -> None

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let ibin_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Min -> "min"
  | Max -> "max"

let fbin_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fmin -> "fmin"
  | Fmax -> "fmax"

let funop_name = function
  | Fneg -> "fneg"
  | Fabs -> "fabs"
  | Fsqrt -> "fsqrt"
  | Fexp -> "fexp"
  | Flog -> "flog"
  | Fsin -> "fsin"
  | Fcos -> "fcos"
