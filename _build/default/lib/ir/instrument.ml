open Insn

let counters_array = "$ifprob"

(* Counter update emitted before a branch on site [s] with condition
   register [cond], using scratch integer registers r0..r3:
     iconst r0, 2s          ; execution-count cell
     ild    r1, cnt[r0]
     addi   r1, r1, 1
     ist    cnt[r0], r1
     iconst r0, 2s+1        ; taken-count cell
     icmp.ne r2, cond, r3   ; r3 holds 0
     ild    r1, cnt[r0]
     add    r1, r1, r2
     ist    cnt[r0], r1 *)
let update_length = 9

let instrument_function ~counters_id (f : Program.func) =
  let r0 = f.n_iregs
  and r1 = f.n_iregs + 1
  and r2 = f.n_iregs + 2
  and r3 = f.n_iregs + 3 in
  let len = Array.length f.code in
  (* new pc of each old instruction *)
  let new_pc = Array.make (len + 1) 0 in
  let shift = ref 0 in
  for pc = 0 to len - 1 do
    new_pc.(pc) <- pc + !shift;
    match f.code.(pc) with
    | Br _ -> shift := !shift + update_length
    | _ -> ()
  done;
  new_pc.(len) <- len + !shift;
  let out = Array.make (len + !shift) Halt in
  Array.iteri
    (fun pc insn ->
      match insn with
      | Br { cond; target; site } ->
        let at = new_pc.(pc) in
        out.(at) <- Iconst (r0, 2 * site);
        out.(at + 1) <- Iload (r1, counters_id, r0);
        out.(at + 2) <- Ibini (Add, r1, r1, 1);
        out.(at + 3) <- Istore (counters_id, r0, r1);
        out.(at + 4) <- Iconst (r0, (2 * site) + 1);
        out.(at + 5) <- Icmp (Ne, r2, cond, r3);
        out.(at + 6) <- Iload (r1, counters_id, r0);
        out.(at + 7) <- Ibin (Add, r1, r1, r2);
        out.(at + 8) <- Istore (counters_id, r0, r1);
        out.(at + 9) <- Br { cond; target = new_pc.(target); site }
      | Jump target -> out.(new_pc.(pc)) <- Jump new_pc.(target)
      | other -> out.(new_pc.(pc)) <- other)
    f.code;
  (* r3 must hold zero; registers start zeroed and the scratch registers
     are never written except r0..r2 above, so no initialization insn is
     needed — keeping the per-branch cost at exactly [update_length]. *)
  { f with code = out; n_iregs = f.n_iregs + 4 }

let branch_counters (p : Program.t) =
  if Array.exists (fun (a : Program.array_decl) -> a.aname = counters_array) p.arrays
  then invalid_arg "Instrument.branch_counters: program already instrumented";
  let counters_id = Array.length p.arrays in
  let arrays =
    Array.append p.arrays
      [|
        {
          Program.aname = counters_array;
          acls = Program.Cint;
          asize = max 1 (2 * Program.n_sites p);
          ainit = 0.0;
        };
      |]
  in
  let funcs = Array.map (instrument_function ~counters_id) p.funcs in
  (* site program counters moved; recompute them from the rewritten code *)
  let sites = Array.copy p.sites in
  Array.iteri
    (fun fid (f : Program.func) ->
      Array.iteri
        (fun pc insn ->
          match branch_site insn with
          | Some s -> sites.(s) <- { (sites.(s)) with Program.s_func = fid; s_pc = pc }
          | None -> ())
        f.code)
    funcs;
  { p with funcs; arrays; sites }
