(** Whole-program container for the RISC-like IR.

    A program is a set of functions over two typed register files, a set of
    named global arrays (the only memory), a function-pointer table for
    indirect calls, and a table of conditional-branch sites. *)

type value_class = Cint | Cfloat

type array_decl = {
  aname : string;  (** unique name, used by datasets to seed inputs *)
  acls : value_class;
  asize : int;
  ainit : float;  (** initial value of every cell (truncated for int
                      arrays); carries global-scalar initializers *)
}

type func = {
  fname : string;  (** unique name *)
  n_iparams : int;  (** incoming args occupy int registers [0..n_iparams-1] *)
  n_fparams : int;  (** and float registers [0..n_fparams-1] *)
  n_iregs : int;  (** size of the integer register file *)
  n_fregs : int;
  code : Insn.insn array;
}

type site_info = {
  s_func : Insn.func_id;  (** enclosing function *)
  s_pc : int;  (** index of the [Br] in that function's code *)
  s_label : string;  (** source-level hint, e.g. ["while@lzw_emit#3"] *)
}

type t = {
  pname : string;
  funcs : func array;
  arrays : array_decl array;
  func_table : Insn.func_id array;
      (** indirect-call table: a [Callind] register value indexes here *)
  entry : Insn.func_id;
  sites : site_info array;  (** one entry per static conditional branch *)
}

val func : t -> Insn.func_id -> func
(** @raise Invalid_argument when out of range. *)

val find_func : t -> string -> Insn.func_id
(** Function index by name.  @raise Not_found. *)

val find_array : t -> string -> Insn.array_id
(** Array index by name.  @raise Not_found. *)

val n_sites : t -> int
(** Number of static conditional-branch sites. *)

val site_label : t -> Insn.site -> string
(** Human-readable label of a site. *)

val static_size : t -> int
(** Total static instruction count over all functions. *)

val static_branches : t -> int
(** Static count of conditional-branch instructions (equals [n_sites] for a
    validated program). *)

val iter_insns : t -> (Insn.func_id -> int -> Insn.insn -> unit) -> unit
(** Visit every instruction as [(f, pc, insn)]. *)
