(** Static well-formedness checks for IR programs.

    The VM assumes validated programs; the compiler validates its output in
    tests.  Checks: register indices within the declared files, parameter
    counts within the files, branch/jump targets in range, call argument
    arities consistent with callee parameter counts, array ids in range,
    function-table entries in range, branch sites numbered densely [0..n-1]
    with correct back-pointers in [Program.sites], and a terminating last
    instruction on every code path that can fall off the end. *)

type error = { location : string; message : string }

val check : Program.t -> error list
(** All violations found (empty means well-formed). *)

val check_exn : Program.t -> unit
(** @raise Invalid_argument with a readable report if [check] is non-empty. *)
