(** The RISC-like instruction set of the simulated machine.

    This models the measurement substrate of the paper: the Multiflow Trace
    14/300 viewed as a sequential RISC (the paper factored out VLIW-ness).
    Instructions are fixed-format three-register operations over two typed
    register files (integer and floating-point), with memory reached only
    through explicit loads and stores on named global arrays.

    Every executed instruction counts as exactly one dynamic instruction —
    the unit of the paper's "instructions per break in control" measure. *)

type ireg = int
(** Index into a function's integer register file. *)

type freg = int
(** Index into a function's floating-point register file. *)

type array_id = int
(** Index of a global array declared by the program. *)

type func_id = int
(** Index of a function in the program's function table. *)

type site = int
(** Static conditional-branch site, unique across the whole program.  The
    IFPROBBER-analogue counters are keyed by this. *)

(** Integer ALU operations. *)
type ibin =
  | Add
  | Sub
  | Mul
  | Div  (** truncating; division by zero traps *)
  | Rem  (** remainder; division by zero traps *)
  | And
  | Or
  | Xor
  | Shl
  | Shr  (** arithmetic shift right *)
  | Min
  | Max

(** Floating-point ALU operations. *)
type fbin = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

(** Unary floating-point operations (the Trace had FP assist hardware;
    transcendentals count as single instructions, as a millicode call
    would have been inlined). *)
type funop = Fneg | Fabs | Fsqrt | Fexp | Flog | Fsin | Fcos

(** Comparison conditions, shared by integer and FP compares. *)
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Where a call puts its result. *)
type dest = No_dest | Int_dest of ireg | Float_dest of freg

(** What a return carries. *)
type ret = Ret_none | Ret_int of ireg | Ret_float of freg

type insn =
  | Iconst of ireg * int  (** load integer constant *)
  | Fconst of freg * float  (** load FP constant *)
  | Imov of ireg * ireg
  | Fmov of freg * freg
  | Ibin of ibin * ireg * ireg * ireg  (** dst, src1, src2 *)
  | Ibini of ibin * ireg * ireg * int  (** immediate second operand *)
  | Inot of ireg * ireg  (** logical not: dst <- (src = 0) *)
  | Ineg of ireg * ireg
  | Fbin of fbin * freg * freg * freg
  | Funop of funop * freg * freg
  | Icmp of cmp * ireg * ireg * ireg  (** int dst <- 0/1 *)
  | Fcmp of cmp * ireg * freg * freg  (** int dst <- 0/1 *)
  | Itof of freg * ireg
  | Ftoi of ireg * freg  (** truncation *)
  | Iload of ireg * array_id * ireg  (** dst <- arr[idx] *)
  | Istore of array_id * ireg * ireg  (** arr[idx] <- src *)
  | Fload of freg * array_id * ireg
  | Fstore of array_id * ireg * freg
  | Select of ireg * ireg * ireg * ireg  (** dst <- if cond<>0 then a else b *)
  | Fselect of freg * ireg * freg * freg
  | Br of { cond : ireg; target : int; site : site }
      (** conditional branch: taken (to [target]) iff [cond] <> 0, else
          falls through.  The only instruction that creates a branch site. *)
  | Jump of int  (** unconditional, intra-function *)
  | Call of { callee : func_id; iargs : ireg list; fargs : freg list; dst : dest }
  | Callind of { table : ireg; iargs : ireg list; fargs : freg list; dst : dest }
      (** indirect call through the program's function-pointer table:
          [table] holds an index into [Program.func_table].  An unavoidable
          break in control, as is the matching return. *)
  | Ret of ret
  | Output of ireg  (** append an integer to the run's output stream *)
  | Foutput of freg
  | Halt  (** stop the machine (valid only in the entry function) *)

(** Coarse classification used by the dynamic instruction counters. *)
type kind =
  | K_ialu  (** integer ALU, moves, constants, compares, selects, not/neg *)
  | K_falu  (** FP ALU, moves, constants, conversions *)
  | K_mem  (** loads and stores *)
  | K_cbranch  (** conditional branches *)
  | K_jump  (** unconditional intra-function jumps *)
  | K_call  (** direct calls *)
  | K_callind  (** indirect calls *)
  | K_ret  (** returns *)
  | K_output  (** output instructions *)
  | K_halt

val kind : insn -> kind
(** Classification of an instruction for the dynamic counters. *)

val kind_name : kind -> string
(** Short printable name ("ialu", "mem", ...). *)

val all_kinds : kind list
(** Every kind, in display order. *)

val branch_site : insn -> site option
(** [Some s] iff the instruction is a conditional branch at site [s]. *)

val cmp_name : cmp -> string
val ibin_name : ibin -> string
val fbin_name : fbin -> string
val funop_name : funop -> string
