open Insn

let pp_dest ppf = function
  | No_dest -> Format.fprintf ppf "_"
  | Int_dest r -> Format.fprintf ppf "i%d" r
  | Float_dest r -> Format.fprintf ppf "f%d" r

let pp_args ppf (iargs, fargs) =
  let items =
    List.map (Printf.sprintf "i%d") iargs @ List.map (Printf.sprintf "f%d") fargs
  in
  Format.fprintf ppf "%s" (String.concat ", " items)

let insn ppf = function
  | Iconst (d, k) -> Format.fprintf ppf "iconst i%d, %d" d k
  | Fconst (d, x) -> Format.fprintf ppf "fconst f%d, %h" d x
  | Imov (d, s) -> Format.fprintf ppf "imov i%d, i%d" d s
  | Fmov (d, s) -> Format.fprintf ppf "fmov f%d, f%d" d s
  | Ibin (op, d, a, b) ->
    Format.fprintf ppf "%s i%d, i%d, i%d" (ibin_name op) d a b
  | Ibini (op, d, a, k) ->
    Format.fprintf ppf "%si i%d, i%d, %d" (ibin_name op) d a k
  | Inot (d, s) -> Format.fprintf ppf "not i%d, i%d" d s
  | Ineg (d, s) -> Format.fprintf ppf "neg i%d, i%d" d s
  | Fbin (op, d, a, b) ->
    Format.fprintf ppf "%s f%d, f%d, f%d" (fbin_name op) d a b
  | Funop (op, d, s) -> Format.fprintf ppf "%s f%d, f%d" (funop_name op) d s
  | Icmp (c, d, a, b) ->
    Format.fprintf ppf "icmp.%s i%d, i%d, i%d" (cmp_name c) d a b
  | Fcmp (c, d, a, b) ->
    Format.fprintf ppf "fcmp.%s i%d, f%d, f%d" (cmp_name c) d a b
  | Itof (d, s) -> Format.fprintf ppf "itof f%d, i%d" d s
  | Ftoi (d, s) -> Format.fprintf ppf "ftoi i%d, f%d" d s
  | Iload (d, a, i) -> Format.fprintf ppf "ild i%d, a%d[i%d]" d a i
  | Istore (a, i, s) -> Format.fprintf ppf "ist a%d[i%d], i%d" a i s
  | Fload (d, a, i) -> Format.fprintf ppf "fld f%d, a%d[i%d]" d a i
  | Fstore (a, i, s) -> Format.fprintf ppf "fst a%d[i%d], f%d" a i s
  | Select (d, c, a, b) ->
    Format.fprintf ppf "select i%d, i%d ? i%d : i%d" d c a b
  | Fselect (d, c, a, b) ->
    Format.fprintf ppf "fselect f%d, i%d ? f%d : f%d" d c a b
  | Br { cond; target; site } ->
    Format.fprintf ppf "br i%d, @%d    ; site %d" cond target site
  | Jump target -> Format.fprintf ppf "jump @%d" target
  | Call { callee; iargs; fargs; dst } ->
    Format.fprintf ppf "call %a, fn%d(%a)" pp_dest dst callee pp_args
      (iargs, fargs)
  | Callind { table; iargs; fargs; dst } ->
    Format.fprintf ppf "callind %a, [i%d](%a)" pp_dest dst table pp_args
      (iargs, fargs)
  | Ret Ret_none -> Format.fprintf ppf "ret"
  | Ret (Ret_int r) -> Format.fprintf ppf "ret i%d" r
  | Ret (Ret_float r) -> Format.fprintf ppf "ret f%d" r
  | Output r -> Format.fprintf ppf "out i%d" r
  | Foutput r -> Format.fprintf ppf "fout f%d" r
  | Halt -> Format.fprintf ppf "halt"

let func ppf (f : Program.func) =
  Format.fprintf ppf "@[<v>func %s (ip=%d fp=%d iregs=%d fregs=%d):@," f.fname
    f.n_iparams f.n_fparams f.n_iregs f.n_fregs;
  Array.iteri
    (fun pc i -> Format.fprintf ppf "  %4d: %a@," pc insn i)
    f.code;
  Format.fprintf ppf "@]"

let program ppf (p : Program.t) =
  Format.fprintf ppf "@[<v>program %s@," p.pname;
  Array.iteri
    (fun i (a : Program.array_decl) ->
      Format.fprintf ppf "array a%d %s : %s[%d]@," i a.aname
        (match a.acls with Program.Cint -> "int" | Program.Cfloat -> "float")
        a.asize)
    p.arrays;
  if Array.length p.func_table > 0 then begin
    let entries =
      Array.to_list p.func_table |> List.map string_of_int |> String.concat " "
    in
    Format.fprintf ppf "functable [%s]@," entries
  end;
  Format.fprintf ppf "entry fn%d@," p.entry;
  Array.iteri (fun i f -> Format.fprintf ppf "; fn%d@,%a@," i func f) p.funcs;
  Format.fprintf ppf "@]"

let insn_to_string i = Format.asprintf "%a" insn i
let program_to_string p = Format.asprintf "%a" program p
