type value_class = Cint | Cfloat

type array_decl = { aname : string; acls : value_class; asize : int; ainit : float }

type func = {
  fname : string;
  n_iparams : int;
  n_fparams : int;
  n_iregs : int;
  n_fregs : int;
  code : Insn.insn array;
}

type site_info = { s_func : Insn.func_id; s_pc : int; s_label : string }

type t = {
  pname : string;
  funcs : func array;
  arrays : array_decl array;
  func_table : Insn.func_id array;
  entry : Insn.func_id;
  sites : site_info array;
}

let func t id =
  if id < 0 || id >= Array.length t.funcs then
    invalid_arg (Printf.sprintf "Program.func: bad id %d in %s" id t.pname);
  t.funcs.(id)

let find_by_name name_of arr name =
  let rec go i =
    if i >= Array.length arr then raise Not_found
    else if String.equal (name_of arr.(i)) name then i
    else go (i + 1)
  in
  go 0

let find_func t name = find_by_name (fun f -> f.fname) t.funcs name
let find_array t name = find_by_name (fun a -> a.aname) t.arrays name

let n_sites t = Array.length t.sites

let site_label t s =
  if s < 0 || s >= Array.length t.sites then Printf.sprintf "<bad site %d>" s
  else t.sites.(s).s_label

let static_size t =
  Array.fold_left (fun acc f -> acc + Array.length f.code) 0 t.funcs

let static_branches t =
  Array.fold_left
    (fun acc f ->
      Array.fold_left
        (fun acc insn ->
          match Insn.branch_site insn with Some _ -> acc + 1 | None -> acc)
        acc f.code)
    0 t.funcs

let iter_insns t visit =
  Array.iteri
    (fun fid f -> Array.iteri (fun pc insn -> visit fid pc insn) f.code)
    t.funcs
