lib/ir/instrument.mli: Program
