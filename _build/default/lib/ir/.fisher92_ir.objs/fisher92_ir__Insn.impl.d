lib/ir/insn.ml:
