lib/ir/insn.mli:
