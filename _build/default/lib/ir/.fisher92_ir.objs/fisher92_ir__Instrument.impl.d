lib/ir/instrument.ml: Array Insn Program
