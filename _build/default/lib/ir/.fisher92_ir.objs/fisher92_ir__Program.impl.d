lib/ir/program.ml: Array Insn Printf String
