lib/ir/program.mli: Insn
