lib/ir/pretty.mli: Format Insn Program
