lib/ir/validate.ml: Array Format Insn List Printf Program String
