lib/ir/pretty.ml: Array Format Insn List Printf Program String
