(** Textual dump of IR programs, for debugging and golden tests. *)

val insn : Format.formatter -> Insn.insn -> unit
(** One instruction, assembly style, e.g. ["add  i3, i1, i2"]. *)

val func : Format.formatter -> Program.func -> unit
(** A whole function with pc-numbered lines. *)

val program : Format.formatter -> Program.t -> unit
(** Arrays, function table, then every function. *)

val insn_to_string : Insn.insn -> string
val program_to_string : Program.t -> string
