open Insn

type error = { location : string; message : string }

let check (p : Program.t) =
  let errors = ref [] in
  let report location fmt =
    Format.kasprintf (fun message -> errors := { location; message } :: !errors) fmt
  in
  let n_funcs = Array.length p.funcs in
  let n_arrays = Array.length p.arrays in
  let seen_sites = Array.make (Array.length p.sites) false in
  if p.entry < 0 || p.entry >= n_funcs then
    report p.pname "entry function %d out of range" p.entry;
  Array.iteri
    (fun i fid ->
      if fid < 0 || fid >= n_funcs then
        report p.pname "func_table[%d] = %d out of range" i fid)
    p.func_table;
  Array.iteri
    (fun fid (f : Program.func) ->
      let len = Array.length f.code in
      let loc pc = Printf.sprintf "%s/%s@%d" p.pname f.fname pc in
      if f.n_iparams > f.n_iregs then
        report f.fname "n_iparams %d exceeds n_iregs %d" f.n_iparams f.n_iregs;
      if f.n_fparams > f.n_fregs then
        report f.fname "n_fparams %d exceeds n_fregs %d" f.n_fparams f.n_fregs;
      if len = 0 then report f.fname "empty code array";
      let ireg pc r =
        if r < 0 || r >= f.n_iregs then report (loc pc) "int register i%d out of range" r
      in
      let freg pc r =
        if r < 0 || r >= f.n_fregs then report (loc pc) "float register f%d out of range" r
      in
      let target pc t =
        if t < 0 || t >= len then report (loc pc) "branch target %d out of range" t
      in
      let arr pc cls a =
        if a < 0 || a >= n_arrays then report (loc pc) "array a%d out of range" a
        else if p.arrays.(a).acls <> cls then
          report (loc pc) "array a%d (%s) used at wrong class" a p.arrays.(a).aname
      in
      let dest pc = function
        | No_dest -> ()
        | Int_dest r -> ireg pc r
        | Float_dest r -> freg pc r
      in
      let call_arity pc callee iargs fargs =
        if callee < 0 || callee >= n_funcs then
          report (loc pc) "callee fn%d out of range" callee
        else begin
          let g = p.funcs.(callee) in
          if List.length iargs <> g.n_iparams then
            report (loc pc) "call to %s passes %d int args, expects %d" g.fname
              (List.length iargs) g.n_iparams;
          if List.length fargs <> g.n_fparams then
            report (loc pc) "call to %s passes %d float args, expects %d" g.fname
              (List.length fargs) g.n_fparams
        end
      in
      Array.iteri
        (fun pc insn ->
          match insn with
          | Iconst (d, _) -> ireg pc d
          | Fconst (d, _) -> freg pc d
          | Imov (d, s) | Inot (d, s) | Ineg (d, s) ->
            ireg pc d;
            ireg pc s
          | Fmov (d, s) | Funop (_, d, s) ->
            freg pc d;
            freg pc s
          | Ibin (_, d, a, b) | Icmp (_, d, a, b) ->
            ireg pc d;
            ireg pc a;
            ireg pc b
          | Ibini (_, d, a, _) ->
            ireg pc d;
            ireg pc a
          | Fbin (_, d, a, b) ->
            freg pc d;
            freg pc a;
            freg pc b
          | Fcmp (_, d, a, b) ->
            ireg pc d;
            freg pc a;
            freg pc b
          | Itof (d, s) ->
            freg pc d;
            ireg pc s
          | Ftoi (d, s) ->
            ireg pc d;
            freg pc s
          | Iload (d, a, i) ->
            ireg pc d;
            arr pc Program.Cint a;
            ireg pc i
          | Istore (a, i, s) ->
            arr pc Program.Cint a;
            ireg pc i;
            ireg pc s
          | Fload (d, a, i) ->
            freg pc d;
            arr pc Program.Cfloat a;
            ireg pc i
          | Fstore (a, i, s) ->
            arr pc Program.Cfloat a;
            ireg pc i;
            freg pc s
          | Select (d, c, a, b) ->
            ireg pc d;
            ireg pc c;
            ireg pc a;
            ireg pc b
          | Fselect (d, c, a, b) ->
            freg pc d;
            ireg pc c;
            freg pc a;
            freg pc b
          | Br { cond; target = t; site } ->
            ireg pc cond;
            target pc t;
            if site < 0 || site >= Array.length p.sites then
              report (loc pc) "branch site %d out of range" site
            else begin
              if seen_sites.(site) then report (loc pc) "branch site %d reused" site;
              seen_sites.(site) <- true;
              let info = p.sites.(site) in
              if info.s_func <> fid || info.s_pc <> pc then
                report (loc pc) "site %d back-pointer mismatch (points to fn%d@%d)"
                  site info.s_func info.s_pc
            end
          | Jump t -> target pc t
          | Call { callee; iargs; fargs; dst } ->
            List.iter (ireg pc) iargs;
            List.iter (freg pc) fargs;
            dest pc dst;
            call_arity pc callee iargs fargs
          | Callind { table; iargs; fargs; dst } ->
            ireg pc table;
            List.iter (ireg pc) iargs;
            List.iter (freg pc) fargs;
            dest pc dst
          | Ret Ret_none -> ()
          | Ret (Ret_int r) -> ireg pc r
          | Ret (Ret_float r) -> freg pc r
          | Output r -> ireg pc r
          | Foutput r -> freg pc r
          | Halt ->
            if fid <> p.entry then report (loc pc) "halt outside entry function")
        f.code;
      (* Falling off the end of the code array is a VM error; require the
         last instruction to be an unconditional transfer. *)
      if len > 0 then
        match f.code.(len - 1) with
        | Ret _ | Jump _ | Halt -> ()
        | _ -> report (loc (len - 1)) "function can fall off the end")
    p.funcs;
  Array.iteri
    (fun site seen ->
      if not seen then
        report p.pname "site %d declared in Program.sites but absent from code" site)
    seen_sites;
  List.rev !errors

let check_exn p =
  match check p with
  | [] -> ()
  | errs ->
    let lines =
      List.map (fun e -> Printf.sprintf "  %s: %s" e.location e.message) errs
    in
    invalid_arg
      (Printf.sprintf "Validate.check_exn: %d error(s) in %s:\n%s"
         (List.length errs) p.pname
         (String.concat "\n" lines))
