(** IFPROBBER-style in-program branch instrumentation.

    The paper's tool compiled a *separate binary* with counters before
    each conditional branch; the counters perturb the instruction counts,
    which is why the study needed a second (MFPixie) binary and had to
    disable dead-code elimination to keep the two aligned.  Our simulator
    collects profiles externally and needs none of that — but to
    reproduce the methodology (and measure the perturbation the paper
    engineered around), this pass builds the instrumented binary for
    real: straight-line counter updates before every conditional branch,
    recording both executions and taken outcomes into a global array.

    No edge splitting is needed: a branch is taken iff its condition
    register is non-zero, which is observable before the branch. *)

val counters_array : string
(** Name of the added int array (["$ifprob"]); cell [2s] holds site [s]'s
    execution count and cell [2s+1] its taken count. *)

val branch_counters : Program.t -> Program.t
(** Return a copy of the program with counter updates inserted before
    every conditional branch (roughly 9 extra instructions per dynamic
    branch).  Each function gains four scratch integer registers; all
    branch and jump targets are remapped; site ids, labels and program
    semantics are unchanged.  The result passes {!Validate.check}.

    @raise Invalid_argument if the program already has an array named
    {!counters_array}. *)
