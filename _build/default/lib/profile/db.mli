(** The IFPROBBER database: accumulated branch counters across runs.

    The paper's flow was: every instrumented run adds its counters to a
    per-program database; a utility later reads the database and feeds the
    totals back into the source as directives.  This module is that
    database, keyed by dataset name so that experiment code can also pull
    out per-dataset profiles (the paper kept those separate when studying
    cross-dataset prediction). *)

type t

val create : program:string -> n_sites:int -> t

val program : t -> string

val record : t -> dataset:string -> Profile.t -> unit
(** Add one run's counters under [dataset] (accumulating if the dataset
    was already recorded, as repeated runs did in the paper).
    @raise Invalid_argument on a profile for a different program. *)

val datasets : t -> string list
(** Recorded dataset names, in first-recorded order. *)

val profile : t -> dataset:string -> Profile.t
(** @raise Not_found. *)

val accumulated : t -> Profile.t
(** Sum over every recorded dataset — what the feedback utility would
    write back into the source. *)

val accumulated_except : t -> dataset:string -> Profile.t option
(** Sum over all datasets except one (the paper's "sum of the other
    datasets" predictor); [None] if that leaves nothing. *)

val save : t -> string
(** Serialize to a line-oriented text format. *)

val load : string -> t
(** @raise Failure on malformed input. *)

val save_file : t -> string -> unit
(** Write {!save}'s text to a path (the paper's on-disk database). *)

val load_file : string -> t
(** @raise Sys_error if unreadable, [Failure] if malformed. *)
