type t = {
  db_program : string;
  db_sites : int;
  tbl : (string, Profile.t) Hashtbl.t;
  mutable order : string list;  (* reversed *)
}

let create ~program ~n_sites =
  { db_program = program; db_sites = n_sites; tbl = Hashtbl.create 8; order = [] }

let program t = t.db_program

let record t ~dataset (p : Profile.t) =
  if not (String.equal p.program t.db_program) then
    invalid_arg
      (Printf.sprintf "Db.record: profile for %s recorded into db for %s"
         p.program t.db_program);
  if Profile.n_sites p <> t.db_sites then
    invalid_arg "Db.record: site count mismatch";
  match Hashtbl.find_opt t.tbl dataset with
  | Some existing -> Hashtbl.replace t.tbl dataset (Profile.add existing p)
  | None ->
    Hashtbl.replace t.tbl dataset p;
    t.order <- dataset :: t.order

let datasets t = List.rev t.order

let profile t ~dataset = Hashtbl.find t.tbl dataset

let accumulated t =
  match datasets t with
  | [] -> Profile.empty ~program:t.db_program ~n_sites:t.db_sites
  | ds -> Profile.sum (List.map (fun d -> profile t ~dataset:d) ds)

let accumulated_except t ~dataset =
  match List.filter (fun d -> not (String.equal d dataset)) (datasets t) with
  | [] -> None
  | ds -> Some (Profile.sum (List.map (fun d -> profile t ~dataset:d) ds))

(* Format:
     ifprobdb <program> <n_sites>
     dataset <name-len> <name>
     <site> <encountered> <taken>     (only non-zero sites)
     end
*)
let save t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "ifprobdb %s %d\n" t.db_program t.db_sites);
  List.iter
    (fun d ->
      let p = profile t ~dataset:d in
      Buffer.add_string buf (Printf.sprintf "dataset %d %s\n" (String.length d) d);
      Array.iteri
        (fun s n ->
          if n > 0 then
            Buffer.add_string buf (Printf.sprintf "%d %d %d\n" s n p.taken.(s)))
        p.encountered;
      Buffer.add_string buf "end\n")
    (datasets t);
  Buffer.contents buf

let load text =
  let lines = String.split_on_char '\n' text in
  let fail fmt = Format.kasprintf failwith fmt in
  match lines with
  | [] -> fail "Db.load: empty input"
  | header :: rest -> (
    match String.split_on_char ' ' header with
    | [ "ifprobdb"; prog; sites ] ->
      let n_sites =
        match int_of_string_opt sites with
        | Some n when n >= 0 -> n
        | _ -> fail "Db.load: bad site count %s" sites
      in
      let db = create ~program:prog ~n_sites in
      let current = ref None in
      List.iter
        (fun line ->
          if String.equal line "" then ()
          else if String.length line > 8 && String.sub line 0 8 = "dataset " then begin
            let after = String.sub line 8 (String.length line - 8) in
            match String.index_opt after ' ' with
            | None -> fail "Db.load: malformed dataset line"
            | Some i ->
              let len =
                match int_of_string_opt (String.sub after 0 i) with
                | Some l -> l
                | None -> fail "Db.load: malformed dataset length"
              in
              let name = String.sub after (i + 1) len in
              current := Some (name, Profile.empty ~program:prog ~n_sites)
          end
          else if String.equal line "end" then begin
            match !current with
            | None -> fail "Db.load: end without dataset"
            | Some (name, p) ->
              record db ~dataset:name p;
              current := None
          end
          else
            match !current with
            | None -> fail "Db.load: counter line outside dataset"
            | Some (_, p) -> (
              match
                String.split_on_char ' ' line |> List.map int_of_string_opt
              with
              | [ Some s; Some n; Some taken ] ->
                if s < 0 || s >= n_sites then fail "Db.load: bad site %d" s;
                if taken < 0 || taken > n then fail "Db.load: bad counts";
                p.encountered.(s) <- p.encountered.(s) + n;
                p.taken.(s) <- p.taken.(s) + taken
              | _ -> fail "Db.load: malformed counter line %S" line))
        rest;
      (match !current with
      | Some _ -> fail "Db.load: missing final end"
      | None -> ());
      db
    | _ -> fail "Db.load: bad header %S" header)

let save_file t path =
  let oc = open_out path in
  (try output_string oc (save t)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text =
    try really_input_string ic n
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  load text
