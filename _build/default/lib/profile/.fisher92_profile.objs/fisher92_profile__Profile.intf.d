lib/profile/profile.mli: Fisher92_ir Fisher92_vm
