lib/profile/db.mli: Profile
