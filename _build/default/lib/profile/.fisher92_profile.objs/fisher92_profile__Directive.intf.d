lib/profile/directive.mli: Fisher92_ir Profile
