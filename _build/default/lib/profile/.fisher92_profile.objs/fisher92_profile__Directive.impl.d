lib/profile/directive.ml: Array Fisher92_ir List Printf Profile String
