lib/profile/db.ml: Array Buffer Format Hashtbl List Printf Profile String
