lib/profile/profile.ml: Array Fisher92_util Fisher92_vm List Printf String
