type t = { d_label : string; d_taken : int; d_not_taken : int }

let of_profile (prog : Fisher92_ir.Program.t) (p : Profile.t) =
  let acc = ref [] in
  for s = Profile.n_sites p - 1 downto 0 do
    let n = p.encountered.(s) in
    if n > 0 then
      acc :=
        {
          d_label = Fisher92_ir.Program.site_label prog s;
          d_taken = p.taken.(s);
          d_not_taken = n - p.taken.(s);
        }
        :: !acc
  done;
  !acc

let render d =
  Printf.sprintf "!MF! IFPROB %S (%d, %d)" d.d_label d.d_taken d.d_not_taken

let render_all ds = String.concat "\n" (List.map render ds) ^ "\n"

let parse line =
  (* !MF! IFPROB "<label>" (<t>, <n>) *)
  let line = String.trim line in
  let prefix = "!MF! IFPROB \"" in
  let plen = String.length prefix in
  if String.length line <= plen || String.sub line 0 plen <> prefix then None
  else
    match String.index_from_opt line plen '"' with
    | None -> None
    | Some close -> (
      let label = String.sub line plen (close - plen) in
      let rest = String.sub line (close + 1) (String.length line - close - 1) in
      let rest = String.trim rest in
      if
        String.length rest < 2
        || rest.[0] <> '('
        || rest.[String.length rest - 1] <> ')'
      then None
      else
        let inner = String.sub rest 1 (String.length rest - 2) in
        match String.split_on_char ',' inner with
        | [ a; b ] -> (
          match
            (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b))
          with
          | Some d_taken, Some d_not_taken when d_taken >= 0 && d_not_taken >= 0
            ->
            Some { d_label = label; d_taken; d_not_taken }
          | _ -> None)
        | _ -> None)

let parse_all text =
  String.split_on_char '\n' text |> List.filter_map parse

let probability_taken d =
  let total = d.d_taken + d.d_not_taken in
  if total = 0 then 0.0 else float_of_int d.d_taken /. float_of_int total
