(** IFPROB feedback directives.

    The paper's utility read the accumulated database and inserted
    directives like [C!MF! IFPROB (32543, 20, 0)] into the source, telling
    the compiler how often each branch went each way.  Our equivalent
    renders one directive per branch site, keyed by the site's
    source-level label, and can parse them back into a prediction for the
    compiler (the switch-reordering pass consumes these). *)

type t = {
  d_label : string;  (** site label, e.g. ["gcd#2:while"] *)
  d_taken : int;
  d_not_taken : int;
}

val of_profile : Fisher92_ir.Program.t -> Profile.t -> t list
(** One directive per site encountered at least once, in site order. *)

val render : t -> string
(** ["!MF! IFPROB \"<label>\" (<taken>, <not_taken>)"]. *)

val render_all : t list -> string

val parse : string -> t option
(** Inverse of {!render}; [None] on lines that are not directives. *)

val parse_all : string -> t list

val probability_taken : t -> float
(** Fraction of executions in which the branch was taken. *)
