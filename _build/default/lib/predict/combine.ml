module Profile = Fisher92_profile.Profile

type weighted = {
  program : string;
  w_encountered : float array;
  w_taken : float array;
}

type strategy = Unscaled | Scaled | Polling

let strategy_name = function
  | Unscaled -> "unscaled"
  | Scaled -> "scaled"
  | Polling -> "polling"

let combine strategy profiles =
  match profiles with
  | [] -> invalid_arg "Combine.combine: no profiles"
  | first :: _ ->
    let n = Profile.n_sites first in
    List.iter
      (fun (p : Profile.t) ->
        if Profile.n_sites p <> n || not (String.equal p.program first.program)
        then invalid_arg "Combine.combine: inconsistent profiles")
      profiles;
    let w_encountered = Array.make n 0.0 in
    let w_taken = Array.make n 0.0 in
    List.iter
      (fun (p : Profile.t) ->
        match strategy with
        | Unscaled ->
          Array.iteri
            (fun s cnt ->
              w_encountered.(s) <- w_encountered.(s) +. float_of_int cnt;
              w_taken.(s) <- w_taken.(s) +. float_of_int p.taken.(s))
            p.encountered
        | Scaled ->
          let total = Profile.total_branches p in
          if total > 0 then begin
            let scale = 1.0 /. float_of_int total in
            Array.iteri
              (fun s cnt ->
                w_encountered.(s) <- w_encountered.(s) +. (float_of_int cnt *. scale);
                w_taken.(s) <- w_taken.(s) +. (float_of_int p.taken.(s) *. scale))
              p.encountered
          end
        | Polling ->
          Array.iteri
            (fun s cnt ->
              if cnt > 0 then begin
                w_encountered.(s) <- w_encountered.(s) +. 1.0;
                if 2 * p.taken.(s) >= cnt then w_taken.(s) <- w_taken.(s) +. 1.0
              end)
            p.encountered)
      profiles;
    { program = first.program; w_encountered; w_taken }

let to_prediction ?(default = false) w =
  Array.init (Array.length w.w_encountered) (fun s ->
      let n = w.w_encountered.(s) in
      if n = 0.0 then default else 2.0 *. w.w_taken.(s) >= n)

let predict ?default strategy profiles =
  to_prediction ?default (combine strategy profiles)
