module I = Fisher92_ir.Insn
module P = Fisher92_ir.Program

let backward_taken (prog : P.t) =
  let pred = Array.make (P.n_sites prog) false in
  P.iter_insns prog (fun _fid pc insn ->
      match insn with
      | I.Br { target; site; _ } -> pred.(site) <- target <= pc
      | _ -> ());
  pred

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let loop_label (prog : P.t) =
  Array.init (P.n_sites prog) (fun s ->
      let label = P.site_label prog s in
      contains_sub ~sub:":while" label || contains_sub ~sub:":for" label)

let always_taken prog = Prediction.always true ~n_sites:(P.n_sites prog)
let always_not_taken prog = Prediction.always false ~n_sites:(P.n_sites prog)

let all =
  [
    ("btfn", backward_taken);
    ("loop-label", loop_label);
    ("always-taken", always_taken);
    ("always-not-taken", always_not_taken);
  ]

let name_of f =
  List.find_map (fun (name, g) -> if g == f then Some name else None) all
