(** Dynamic (hardware) branch predictors, for the static-vs-dynamic
    ablation.

    The paper contrasts its static scheme with the 1- and 2-bit per-branch
    counters of [Smith 81] / [Lee and Smith 84].  These simulators attach
    to a VM run through {!Fisher92_vm.Vm.config}'s [on_branch] hook and
    update their state on every dynamic branch, so they see the program in
    execution order just as a branch-prediction cache would. *)

type scheme =
  | Last_direction  (** 1-bit: predict whatever the branch last did *)
  | Two_bit  (** 2-bit saturating counter per site *)
  | Static of Prediction.t  (** fixed assignment, for head-to-head runs *)

val scheme_name : scheme -> string

type t

val create : scheme -> n_sites:int -> t
(** Counters start predicting not-taken (a cold predictor). *)

val hook : t -> Fisher92_ir.Insn.site -> bool -> unit
(** Feed one dynamic branch: records correct/incorrect, then updates. *)

val correct : t -> int

val incorrect : t -> int

val percent_correct : t -> float
