lib/predict/dynamic.mli: Fisher92_ir Prediction
