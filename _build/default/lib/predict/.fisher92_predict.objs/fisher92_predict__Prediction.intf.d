lib/predict/prediction.mli: Fisher92_profile
