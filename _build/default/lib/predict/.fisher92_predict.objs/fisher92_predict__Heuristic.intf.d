lib/predict/heuristic.mli: Fisher92_ir Prediction
