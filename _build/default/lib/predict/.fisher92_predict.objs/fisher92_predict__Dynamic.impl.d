lib/predict/dynamic.ml: Array Fisher92_util Prediction
