lib/predict/combine.mli: Fisher92_profile Prediction
