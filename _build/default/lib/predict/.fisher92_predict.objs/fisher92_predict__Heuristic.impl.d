lib/predict/heuristic.ml: Array Fisher92_ir List Prediction String
