lib/predict/combine.ml: Array Fisher92_profile List String
