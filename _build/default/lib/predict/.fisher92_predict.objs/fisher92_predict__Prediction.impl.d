lib/predict/prediction.ml: Array Fisher92_profile Fisher92_util
