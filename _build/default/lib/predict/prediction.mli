(** Static branch predictions: one fixed direction per branch site.

    This is the object the paper attaches at compile time: "static methods
    attach one direction to each conditional branch ... the branch is then
    always predicted to go in that direction". *)

type t = bool array
(** [t.(s)] is true when site [s] is predicted taken. *)

val always : bool -> n_sites:int -> t

val of_profile : ?default:bool -> Fisher92_profile.Profile.t -> t
(** Majority direction per site.  Sites the profile never saw get
    [default] (default: not taken — an unprofiled branch is usually an
    error path). *)

val mispredicts : t -> Fisher92_profile.Profile.t -> int
(** Dynamic mispredicts this prediction incurs on a target run. *)

val percent_correct : t -> Fisher92_profile.Profile.t -> float
(** The traditional measure the paper argues against — reported for
    comparison with prior work. *)

val agreement : t -> t -> on:Fisher92_profile.Profile.t -> float
(** Fraction of dynamic branches (per [on]'s weights) on which two
    predictions agree. *)
