module Profile = Fisher92_profile.Profile

type t = bool array

let always dir ~n_sites = Array.make n_sites dir

let of_profile ?(default = false) (p : Profile.t) =
  Array.init (Profile.n_sites p) (fun s ->
      match Profile.majority_taken p s with Some dir -> dir | None -> default)

let mispredicts t p = Profile.mispredicts ~prediction:t p

let percent_correct t p =
  let total = Profile.total_branches p in
  Fisher92_util.Stats.percent (total - mispredicts t p) total

let agreement a b ~on:(p : Profile.t) =
  if Array.length a <> Array.length b || Array.length a <> Profile.n_sites p
  then invalid_arg "Prediction.agreement: size mismatch";
  let agree = ref 0 in
  Array.iteri
    (fun s n -> if a.(s) = b.(s) then agree := !agree + n)
    p.encountered;
  Fisher92_util.Stats.ratio !agree (Profile.total_branches p)
