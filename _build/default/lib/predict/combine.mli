(** Combining several datasets' profiles into one predictor.

    The paper (§3, "Scaled vs. unscaled summary predictors") tried three
    ways of merging the counts of all datasets other than the target:

    - {b unscaled}: add the raw counts;
    - {b scaled}: divide each dataset's counts by its total branch count
      first, giving every dataset equal weight regardless of run length
      (the variant the paper reports);
    - {b polling}: each dataset casts one vote per site for its majority
      direction ("performed poorly and was discarded").

    All three produce a weighted profile from which a prediction is read
    by per-site majority. *)

type weighted = {
  program : string;
  w_encountered : float array;
  w_taken : float array;
}

type strategy = Unscaled | Scaled | Polling

val strategy_name : strategy -> string

val combine : strategy -> Fisher92_profile.Profile.t list -> weighted
(** @raise Invalid_argument on an empty or inconsistent list. *)

val to_prediction : ?default:bool -> weighted -> Prediction.t
(** Majority direction per site; unseen sites get [default] (not taken). *)

val predict : ?default:bool -> strategy -> Fisher92_profile.Profile.t list -> Prediction.t
(** [to_prediction (combine strategy profiles)]. *)
