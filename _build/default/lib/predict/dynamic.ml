type scheme = Last_direction | Two_bit | Static of Prediction.t

let scheme_name = function
  | Last_direction -> "1-bit"
  | Two_bit -> "2-bit"
  | Static _ -> "static"

type t = {
  scheme : scheme;
  state : int array;  (* 1-bit: 0/1; 2-bit: 0..3, >=2 predicts taken *)
  mutable correct : int;
  mutable incorrect : int;
}

let create scheme ~n_sites =
  { scheme; state = Array.make n_sites 0; correct = 0; incorrect = 0 }

let hook t site taken =
  let predicted =
    match t.scheme with
    | Last_direction -> t.state.(site) = 1
    | Two_bit -> t.state.(site) >= 2
    | Static p -> p.(site)
  in
  if predicted = taken then t.correct <- t.correct + 1
  else t.incorrect <- t.incorrect + 1;
  match t.scheme with
  | Last_direction -> t.state.(site) <- (if taken then 1 else 0)
  | Two_bit ->
    t.state.(site) <-
      (if taken then min 3 (t.state.(site) + 1) else max 0 (t.state.(site) - 1))
  | Static _ -> ()

let correct t = t.correct
let incorrect t = t.incorrect

let percent_correct t =
  Fisher92_util.Stats.percent t.correct (t.correct + t.incorrect)
