(** Static prediction without profiles: the "very simple heuristics,
    distinguishing between loops and nonloops" whose results the paper
    calls "unsurprisingly, terrible" (about a factor of two in
    instructions per break on non-vector codes).

    These heuristics inspect only the compiled program, never a run. *)

val backward_taken : Fisher92_ir.Program.t -> Prediction.t
(** BTFN: a branch whose target precedes it (a loop back edge) is
    predicted taken; forward branches not taken.  This is the classic
    [Smith 81]-era opcode-free heuristic. *)

val loop_label : Fisher92_ir.Program.t -> Prediction.t
(** Source-structure variant: branches whose site label marks a loop test
    ([while]/[for]) are predicted taken, everything else not taken —
    i.e. "assume loops repeat, assume ifs fall through". *)

val always_taken : Fisher92_ir.Program.t -> Prediction.t

val always_not_taken : Fisher92_ir.Program.t -> Prediction.t

val name_of : (Fisher92_ir.Program.t -> Prediction.t) -> string option
(** Display name for the four heuristics above. *)

val all : (string * (Fisher92_ir.Program.t -> Prediction.t)) list
(** Every heuristic with its display name. *)
