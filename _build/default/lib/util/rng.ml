type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* OCaml's native int is 63 bits, so keep 62 bits to stay non-negative *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  assert (bound > 0);
  nonneg t mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let mantissa = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float mantissa /. 9007199254740992.0 *. bound

let chance t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let float_in t lo hi = lo +. float t (hi -. lo)

let gaussian t =
  let rec loop () =
    let u = float_in t (-1.0) 1.0 and v = float_in t (-1.0) 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then loop ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  loop ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_weighted t choices =
  let total = Array.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  assert (total > 0);
  let rec go i remaining =
    let w, x = choices.(i) in
    if remaining < w then x else go (i + 1) (remaining - w)
  in
  go 0 (int t total)

let split t = { state = next_int64 t }
