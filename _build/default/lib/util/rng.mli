(** Deterministic pseudo-random number generation.

    All dataset generators in this repository draw from this splitmix64
    implementation so that every run of every experiment sees bit-identical
    inputs.  The standard-library [Random] module is deliberately not used:
    its sequence is not guaranteed stable across OCaml releases. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    sequences. *)

val copy : t -> t
(** Independent clone with the same current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit value of the splitmix64 sequence. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** Uniform in [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller, one value per call). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_weighted : t -> (int * 'a) array -> 'a
(** [pick_weighted t choices] picks proportionally to the integer weights,
    which must sum to a positive value. *)

val split : t -> t
(** Derive an independent child generator, advancing the parent. *)
