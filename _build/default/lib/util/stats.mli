(** Small summary-statistics helpers used by the metrics and report code. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 for the empty list. *)

val min_max : float list -> float * float
(** Smallest and largest element.  @raise Invalid_argument on []. *)

val median : float list -> float
(** Median (mean of the two middle elements for even lengths). *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val ratio : int -> int -> float
(** [ratio num den] as a float; 0 when [den] is 0. *)

val percent : int -> int -> float
(** [percent part whole] in 0..100; 0 when [whole] is 0. *)

val weighted_mean : (float * float) list -> float
(** [weighted_mean \[(w, x); ...\]]; 0 when total weight is 0. *)

val pearson : (float * float) list -> float
(** Pearson correlation coefficient of paired samples; 0 when either
    side has no variance or fewer than 2 pairs. *)
