lib/util/stats.mli:
