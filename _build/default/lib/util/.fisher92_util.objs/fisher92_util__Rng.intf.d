lib/util/rng.mli:
