(** Distribution of instruction-run lengths between breaks in control.

    The paper (§3, "ILP compilers will get larger candidate sets than
    this") points out that the *distribution* of runs matters, not just
    the mean: "far more ILP will be available if one has 80 instructions
    followed by two mispredicted branches than if one has 40 instructions,
    a mispredicted branch ... Branches in real programs are not evenly
    spaced."  This module summarizes the power-of-two gap histogram the
    VM records when run with a prediction. *)

type summary = {
  g_count : int;  (** gaps observed *)
  g_mean : float;  (** mean gap (instructions per break) *)
  g_median : float;  (** histogram-interpolated median *)
  g_p90 : float;  (** 90th percentile *)
  g_skew : float;  (** mean / median; > 1 means long runs hide behind a
                       small typical gap — the paper's point *)
}

val summarize : Fisher92_vm.Vm.result -> summary
(** Summarize a run executed with [config.predicted] set.
    All-zero when the run recorded no gaps. *)

val bucket_bounds : int -> int * int
(** [bucket_bounds b] is the inclusive-exclusive gap range of histogram
    bucket [b], i.e. [(2^b, 2^(b+1))]. *)
