module Prediction = Fisher92_predict.Prediction
module Combine = Fisher92_predict.Combine

type entry = {
  target : string;
  self_ipb : float;
  others_ipb : float option;
  best : (string * float) option;
  worst : (string * float) option;
}

let pair_quality ~predictor ~target =
  let p = Prediction.of_profile predictor.Measure.profile in
  Measure.prediction_quality target p

let check_same_program runs =
  match runs with
  | [] -> invalid_arg "Cross.analyze: no runs"
  | first :: rest ->
    List.iter
      (fun r ->
        if not (String.equal r.Measure.program first.Measure.program) then
          invalid_arg "Cross.analyze: runs from different programs")
      rest;
    first

let analyze ?(strategy = Combine.Scaled) runs =
  let (_ : Measure.run) = check_same_program runs in
  List.map
    (fun target ->
      let others =
        List.filter
          (fun r -> not (String.equal r.Measure.dataset target.Measure.dataset))
          runs
      in
      let others_ipb =
        match others with
        | [] -> None
        | _ ->
          let profiles = List.map (fun r -> r.Measure.profile) others in
          let p = Combine.predict strategy profiles in
          Some (Measure.ipb_predicted target p)
      in
      let qualities =
        List.map
          (fun predictor ->
            (predictor.Measure.dataset, pair_quality ~predictor ~target))
          others
      in
      let best =
        List.fold_left
          (fun acc (name, q) ->
            match acc with
            | Some (_, bq) when bq >= q -> acc
            | _ -> Some (name, q))
          None qualities
      in
      let worst =
        List.fold_left
          (fun acc (name, q) ->
            match acc with
            | Some (_, wq) when wq <= q -> acc
            | _ -> Some (name, q))
          None qualities
      in
      {
        target = target.Measure.dataset;
        self_ipb = Measure.ipb_self target;
        others_ipb;
        best;
        worst;
      })
    runs

let matrix runs =
  List.concat_map
    (fun target ->
      List.filter_map
        (fun predictor ->
          if String.equal predictor.Measure.dataset target.Measure.dataset then
            None
          else
            Some
              ( predictor.Measure.dataset,
                target.Measure.dataset,
                pair_quality ~predictor ~target ))
        runs)
    runs
