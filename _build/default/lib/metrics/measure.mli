(** Per-run measurements: one executed (program, dataset) pair with its
    instruction counts and branch profile, and the paper's derived
    quantities. *)

type run = {
  program : string;
  dataset : string;
  counts : Breaks.counts;
  profile : Fisher92_profile.Profile.t;
}

val of_result :
  program:string -> dataset:string -> Fisher92_vm.Vm.result -> run

val self_prediction : run -> Fisher92_predict.Prediction.t
(** The run's own majority directions — the paper's "best possible
    prediction" upper bound. *)

val ipb_unpredicted : ?with_calls:bool -> run -> float
(** Figure 1: instructions per break with no branch prediction.
    [with_calls] defaults to false (black bars). *)

val ipb_predicted : run -> Fisher92_predict.Prediction.t -> float
(** Figure 2: instructions per break when branches are predicted; only
    mispredicts and unavoidable transfers break. *)

val ipb_self : run -> float
(** [ipb_predicted run (self_prediction run)]. *)

val percent_correct : run -> Fisher92_predict.Prediction.t -> float
(** Traditional measure: % of dynamic conditional branches predicted
    correctly. *)

val percent_taken : run -> float
(** % of dynamic conditional branches that were taken. *)

val prediction_quality : run -> Fisher92_predict.Prediction.t -> float
(** Figure 3's ratio: [ipb_predicted run p / ipb_self run], i.e. the
    fraction of the best possible instructions-per-break achieved (1.0 =
    as good as self-prediction).  Defined as 1.0 when the run has no
    breaks at all under self prediction. *)
