module Profile = Fisher92_profile.Profile
module Prediction = Fisher92_predict.Prediction

type run = {
  program : string;
  dataset : string;
  counts : Breaks.counts;
  profile : Profile.t;
}

let of_result ~program ~dataset (r : Fisher92_vm.Vm.result) =
  {
    program;
    dataset;
    counts = Breaks.of_result r;
    profile = Profile.of_run ~program r;
  }

let self_prediction run = Prediction.of_profile run.profile

let ipb_unpredicted ?(with_calls = false) run =
  Breaks.per_break ~instructions:run.counts.instructions
    ~breaks:(Breaks.unpredicted_breaks ~with_calls run.counts)

let ipb_predicted run prediction =
  let mispredicts = Prediction.mispredicts prediction run.profile in
  Breaks.per_break ~instructions:run.counts.instructions
    ~breaks:(Breaks.predicted_breaks ~mispredicts run.counts)

let ipb_self run = ipb_predicted run (self_prediction run)

let percent_correct run prediction =
  Prediction.percent_correct prediction run.profile

let percent_taken run = Profile.percent_taken run.profile

let prediction_quality run prediction =
  let self = ipb_self run in
  let this = ipb_predicted run prediction in
  if self = infinity then if this = infinity then 1.0 else 0.0
  else this /. self
