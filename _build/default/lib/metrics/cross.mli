(** Cross-dataset prediction over the runs of one program: the machinery
    behind Figures 2 and 3 and the compress↔uncompress observation. *)

type entry = {
  target : string;  (** dataset being predicted *)
  self_ipb : float;  (** best possible: dataset predicts itself *)
  others_ipb : float option;
      (** scaled sum of all other datasets as predictor; [None] when the
          program has a single dataset *)
  best : (string * float) option;
      (** best single other dataset: name and quality ratio (1.0 = as good
          as self-prediction) *)
  worst : (string * float) option;  (** worst single other dataset *)
}

val analyze :
  ?strategy:Fisher92_predict.Combine.strategy ->
  Measure.run list ->
  entry list
(** One entry per run, in input order.  All runs must be of the same
    program.  Default combining strategy is [Scaled], as in the paper.
    @raise Invalid_argument on an empty list or mixed programs. *)

val pair_quality : predictor:Measure.run -> target:Measure.run -> float
(** Quality ratio of predicting [target] with [predictor]'s profile. *)

val matrix : Measure.run list -> (string * string * float) list
(** Every (predictor, target, quality) pair with predictor ≠ target. *)
