lib/metrics/breaks.mli: Fisher92_vm
