lib/metrics/cross.ml: Fisher92_predict List Measure String
