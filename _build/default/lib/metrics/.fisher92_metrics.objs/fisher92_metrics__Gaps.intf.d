lib/metrics/gaps.mli: Fisher92_vm
