lib/metrics/coverage.ml: Array Cross Fisher92_predict Fisher92_profile Fisher92_util List Measure String
