lib/metrics/measure.mli: Breaks Fisher92_predict Fisher92_profile Fisher92_vm
