lib/metrics/gaps.ml: Array Fisher92_vm
