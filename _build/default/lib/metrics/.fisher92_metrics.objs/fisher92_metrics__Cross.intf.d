lib/metrics/cross.mli: Fisher92_predict Measure
