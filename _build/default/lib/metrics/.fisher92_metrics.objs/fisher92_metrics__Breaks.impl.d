lib/metrics/breaks.ml: Fisher92_ir Fisher92_vm
