lib/metrics/coverage.mli: Measure
