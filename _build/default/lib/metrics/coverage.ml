module Profile = Fisher92_profile.Profile
module Prediction = Fisher92_predict.Prediction
module Stats = Fisher92_util.Stats

type pair = {
  cv_predictor : string;
  cv_target : string;
  cv_coverage : float;
  cv_agreement : float;
  cv_quality : float;
}

let one ~(predictor : Measure.run) ~(target : Measure.run) =
  let p = predictor.profile and t = target.profile in
  let covered = ref 0 in
  let agreeing = ref 0 in
  let total = Profile.total_branches t in
  Array.iteri
    (fun s n ->
      if n > 0 && p.Profile.encountered.(s) > 0 then begin
        covered := !covered + n;
        match (Profile.majority_taken p s, Profile.majority_taken t s) with
        | Some a, Some b when a = b -> agreeing := !agreeing + n
        | _ -> ()
      end)
    t.Profile.encountered;
  {
    cv_predictor = predictor.dataset;
    cv_target = target.dataset;
    cv_coverage = Stats.ratio !covered total;
    cv_agreement = Stats.ratio !agreeing (max !covered 1);
    cv_quality = Cross.pair_quality ~predictor ~target;
  }

let pairs runs =
  List.concat_map
    (fun (target : Measure.run) ->
      List.filter_map
        (fun (predictor : Measure.run) ->
          if String.equal predictor.dataset target.dataset then None
          else Some (one ~predictor ~target))
        runs)
    runs

type correlation = {
  cr_program : string;
  cr_n : int;
  cr_coverage_r : float;
  cr_agreement_r : float;
}

let correlate runs =
  match runs with
  | [] | [ _ ] -> invalid_arg "Coverage.correlate: need at least two runs"
  | first :: _ ->
    List.iter
      (fun (r : Measure.run) ->
        if not (String.equal r.program first.Measure.program) then
          invalid_arg "Coverage.correlate: mixed programs")
      runs;
    let ps = pairs runs in
    {
      cr_program = first.Measure.program;
      cr_n = List.length ps;
      cr_coverage_r =
        Stats.pearson (List.map (fun p -> (p.cv_coverage, p.cv_quality)) ps);
      cr_agreement_r =
        Stats.pearson (List.map (fun p -> (p.cv_agreement, p.cv_quality)) ps);
    }
