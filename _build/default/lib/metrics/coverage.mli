(** The paper's "Coverage" informal observation, §3: "we felt that when a
    dataset predictor did poorly, it was usually because it emphasized a
    different part of the program than the target dataset, rather than
    that the branches changed direction.  We tried many schemes to
    capture this concept in some measurable quantity ... Nothing we
    tried seemed to correlate well with the results."

    This module reproduces the attempt with two of the paper's candidate
    quantities and correlates them against prediction quality. *)

type pair = {
  cv_predictor : string;
  cv_target : string;
  cv_coverage : float;
      (** fraction of the target's dynamic branches whose site the
          predictor exercised at least once (the "emphasis" overlap) *)
  cv_agreement : float;
      (** on the covered sites, the fraction of the target's dynamic
          branches whose majority direction the two runs share (the
          "branches changed direction" alternative) *)
  cv_quality : float;  (** prediction quality, as in {!Cross} *)
}

val pairs : Measure.run list -> pair list
(** Every ordered (predictor, target) pair of one program's runs. *)

type correlation = {
  cr_program : string;
  cr_n : int;  (** pairs *)
  cr_coverage_r : float;  (** Pearson r of coverage vs quality *)
  cr_agreement_r : float;  (** Pearson r of direction agreement vs quality *)
}

val correlate : Measure.run list -> correlation
(** @raise Invalid_argument on fewer than two runs or mixed programs. *)
