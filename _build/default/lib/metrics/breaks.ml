module Vm = Fisher92_vm.Vm
module I = Fisher92_ir.Insn

type counts = {
  instructions : int;
  cond_branches : int;
  unavoidable : int;
  direct_call_ret : int;
  jumps : int;
}

let of_result (r : Vm.result) =
  {
    instructions = r.total - Vm.kind_count r I.K_halt;
    cond_branches = Vm.kind_count r I.K_cbranch;
    unavoidable = Vm.kind_count r I.K_callind + r.rets_from_indirect;
    direct_call_ret = Vm.kind_count r I.K_call + r.rets_from_direct;
    jumps = Vm.kind_count r I.K_jump;
  }

let unpredicted_breaks ~with_calls c =
  c.cond_branches + c.unavoidable + if with_calls then c.direct_call_ret else 0

let predicted_breaks ~mispredicts c =
  if mispredicts < 0 || mispredicts > c.cond_branches then
    invalid_arg "Breaks.predicted_breaks: mispredict count out of range";
  mispredicts + c.unavoidable

let per_break ~instructions ~breaks =
  if breaks = 0 then infinity
  else float_of_int instructions /. float_of_int breaks

let instructions_per_branch c =
  per_break ~instructions:c.instructions ~breaks:c.cond_branches
