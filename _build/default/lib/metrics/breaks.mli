(** Breaks-in-control accounting (paper §2).

    The paper classifies control transfers as:

    - {b unavoidable breaks}: indirect calls/jumps and their returns — no
      compiler trick moves ILP past them;
    - {b avoidable breaks}: direct calls and returns (reported both ways),
      unconditional jumps (assumed eliminated by code layout, so never
      counted), and multi-destination branches (already lowered by our
      compiler into conditional-branch cascades, so they appear as
      conditional branches);
    - {b conditional branches}: breaks when unpredicted or mispredicted.

    Instructions are everything the machine executed.  [Halt] is the
    simulator's stop and is not counted. *)

type counts = {
  instructions : int;  (** dynamic instructions (excluding [Halt]) *)
  cond_branches : int;  (** dynamic conditional branches *)
  unavoidable : int;  (** indirect calls + their returns *)
  direct_call_ret : int;  (** direct calls + their returns *)
  jumps : int;  (** unconditional jumps (never breaks, reported for info) *)
}

val of_result : Fisher92_vm.Vm.result -> counts

val unpredicted_breaks : with_calls:bool -> counts -> int
(** Figure 1's denominator: every conditional branch is a break, plus the
    unavoidable breaks; [with_calls] adds direct calls and returns (the
    white bars). *)

val predicted_breaks : mispredicts:int -> counts -> int
(** Figure 2's denominator: only mispredicted conditional branches break,
    plus the unavoidable breaks (direct calls assumed inlined). *)

val per_break : instructions:int -> breaks:int -> float
(** Instructions per break; [infinity] when there are no breaks. *)

val instructions_per_branch : counts -> float
(** Branch density (the paper: li ≈ every 10 instructions, fpppp ≈ 170). *)
