module Vm = Fisher92_vm.Vm

type summary = {
  g_count : int;
  g_mean : float;
  g_median : float;
  g_p90 : float;
  g_skew : float;
}

let bucket_bounds b = (1 lsl b, 1 lsl (b + 1))

(* Quantile by linear interpolation within the matching power-of-two
   bucket: gaps inside a bucket are assumed uniform. *)
let quantile hist total q =
  if total = 0 then 0.0
  else begin
    let want = q *. float_of_int total in
    let rec go b seen =
      if b >= Array.length hist then float_of_int (1 lsl (Array.length hist - 1))
      else
        let here = hist.(b) in
        if float_of_int (seen + here) >= want && here > 0 then begin
          let lo, hi = bucket_bounds b in
          let into = (want -. float_of_int seen) /. float_of_int here in
          float_of_int lo +. (into *. float_of_int (hi - lo))
        end
        else go (b + 1) (seen + here)
    in
    go 0 0
  end

let summarize (r : Vm.result) =
  let total = r.gap_count in
  if total = 0 then
    { g_count = 0; g_mean = 0.0; g_median = 0.0; g_p90 = 0.0; g_skew = 0.0 }
  else begin
    let mean = float_of_int r.gap_sum /. float_of_int total in
    let median = quantile r.gap_histogram total 0.5 in
    let p90 = quantile r.gap_histogram total 0.9 in
    {
      g_count = total;
      g_mean = mean;
      g_median = median;
      g_p90 = p90;
      g_skew = (if median > 0.0 then mean /. median else 0.0);
    }
  end
