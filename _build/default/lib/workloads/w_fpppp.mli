(** 042.fpppp analogue: a deterministically generated giant straight-line
    floating-point basic block per "atom quadruple", plus integral-
    screening cutoffs calibrated to the paper's 83%-majority branches. *)

val program : Fisher92_minic.Ast.program
val workload : Workload.t
