(* 030.matrix300 analogue: dense matrix multiply.

   The original multiplies 300x300 matrices; we default to 72x72 so that a
   run is ~4M simulated instructions (the simulator interprets every
   RISC-level instruction).  The control-flow character is identical:
   perfectly nested counted loops whose back edges are taken (n-1)/n of
   the time, giving the extreme predictability Table 3 reports.

   matrix300 tops Table 1 with 29% dynamic dead code; we synthesize that
   with an inner-loop checksum that is never consumed and a scratch store
   that is never loaded, both of which [Passes.dce] removes. *)

open Fisher92_minic.Dsl

let n_max = 128

let program =
  program "matrix300" ~entry:"main"
    ~globals:[ gint "n" 72 ]
    ~arrays:
      [
        farr "a" (n_max * n_max);
        farr "b" (n_max * n_max);
        farr "c" (n_max * n_max);
        farr "scratch" (n_max * n_max);
      ]
    [
      fn "init" []
        [
          leti "nn" (g "n");
          for_ "row" (i 0) (v "nn")
            [
              for_ "col" (i 0) (v "nn")
                [
                  leti "idx" ((v "row" *: v "nn") +: v "col");
                  st "a" (v "idx")
                    (to_float (((v "row" *: i 3) +: (v "col" *: i 5)) %: i 11)
                    *: fl 0.125
                    +: fl 0.5);
                  st "b" (v "idx")
                    (to_float (((v "row" *: i 7) +: (v "col" *: i 2)) %: i 13)
                    *: fl 0.0625
                    -: fl 0.25);
                ];
            ];
        ];
      fn "main" [] ~ret:Fisher92_minic.Ast.Tint
        [
          expr_ (call "init" []);
          leti "nn" (g "n");
          letf "dead_chk" (fl 0.0);
          for_ "row" (i 0) (v "nn")
            [
              for_ "col" (i 0) (v "nn")
                [
                  letf "sum" (fl 0.0);
                  for_ "k" (i 0) (v "nn")
                    [
                      set "sum"
                        (v "sum"
                        +: ld "a" ((v "row" *: v "nn") +: v "k")
                           *: ld "b" ((v "k" *: v "nn") +: v "col"));
                      (* dead: a scratch store nothing loads (Table 1:
                         matrix300 29%) *)
                      st "scratch" ((v "k" *: v "nn") +: v "col") (v "sum");
                      set "dead_chk" (v "dead_chk" +: v "sum");
                    ];
                  st "c" ((v "row" *: v "nn") +: v "col") (v "sum");
                ];
            ];
          (* emit a trace of the result for verification *)
          letf "trace" (fl 0.0);
          for_ "d" (i 0) (v "nn")
            [ set "trace" (v "trace" +: ld "c" ((v "d" *: v "nn") +: v "d")) ];
          out (to_int (v "trace" *: fl 1000.0));
          ret (i 0);
        ];
    ]

(* Reference result for tests: the diagonal-sum trace the program outputs. *)
let reference_trace n =
  let a = Array.make_matrix n n 0.0 and b = Array.make_matrix n n 0.0 in
  for row = 0 to n - 1 do
    for col = 0 to n - 1 do
      a.(row).(col) <-
        (float_of_int (((row * 3) + (col * 5)) mod 11) *. 0.125) +. 0.5;
      b.(row).(col) <-
        (float_of_int (((row * 7) + (col * 2)) mod 13) *. 0.0625) -. 0.25
    done
  done;
  let trace = ref 0.0 in
  for d = 0 to n - 1 do
    let sum = ref 0.0 in
    for k = 0 to n - 1 do
      sum := !sum +. (a.(d).(k) *. b.(k).(d))
    done;
    trace := !trace +. !sum
  done;
  int_of_float (!trace *. 1000.0)

let workload =
  {
    Workload.w_name = "matrix300";
    w_paper_name = "030.matrix300";
    w_lang = Workload.Fortran_fp;
    w_descr = "dense linear matrix solver (matrix multiply kernel)";
    w_program = program;
    w_seeded_globals = [ "n" ];
    w_datasets =
      [
        {
          ds_name = "self";
          ds_descr = "program generates its own data (72x72)";
          ds_iargs = [];
          ds_fargs = [];
          ds_arrays = [ ("$n", `Ints [| 72 |]) ];
        };
      ];
  }
