(** spiff analogue: LCS line diff with floating-point tolerance. *)

val program : Fisher92_minic.Ast.program
val workload : Workload.t
