(* 015.doduc analogue: Monte-Carlo simulation of a nuclear reactor
   component.

   doduc is the least loop-regular of the paper's FORTRAN programs
   (Table 3: ~260-275 instructions/break): its time loop interleaves
   table lookups, data-dependent branching on physical thresholds, and
   short arithmetic blocks.  We reproduce that with a deterministic
   particle-transport loop: an LCG drives collision sampling through
   nested threshold tests, energy-group table searches, and absorption/
   scatter bookkeeping.  Datasets tiny/small/ref differ only in particle
   count, like SPEC's three similar inputs. *)

open Fisher92_minic.Dsl

let groups = 24

let program =
  program "doduc" ~entry:"main"
    ~globals:
      [
        gint "particles" 4000;
        gint "seed" 12345;
        gfloat "total_path" 0.0;
        gfloat "total_dose" 0.0;
      ]
    ~arrays:
      [
        farr "xsect" groups;  (* cross-sections per energy group *)
        farr "bounds" groups; (* group upper bounds *)
        iarr "tally_abs" groups;
        iarr "tally_scat" groups;
        iarr "tally_leak" 4;
      ]
    [
      (* 16-bit LCG over the "seed" global: deterministic but irregular *)
      fn "next_random" [] ~ret:Fisher92_minic.Ast.Tint
        [
          gset "seed" (((g "seed" *: i 1103515245) +: i 12345) %: i 2147483647);
          ret (g "seed" %: i 65536);
        ];
      fn "setup" []
        [
          for_ "gp" (i 0) (i groups)
            [
              st "bounds" (v "gp")
                (to_float ((v "gp" +: i 1) *: (v "gp" +: i 1)) *: fl 113.0);
              st "xsect" (v "gp")
                (fl 0.5 +: (sin_ (to_float (v "gp") *: fl 0.9) *: fl 0.35));
            ];
        ];
      (* linear search of the energy-group table (the paper-era style) *)
      fn "group_of" [ pf "energy" ] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "gp" (i 0);
          while_ ((v "gp" <: i (groups - 1)) &&: (v "energy" >: ld "bounds" (v "gp")))
            [ incr_ "gp" ];
          ret (v "gp");
        ];
      fn "main" [] ~ret:Fisher92_minic.Ast.Tint
        [
          expr_ (call "setup" []);
          leti "np" (g "particles");
          leti "alive_total" (i 0);
          for_ "p" (i 0) (v "np")
            [
              letf "energy"
                (to_float ((call "next_random" [] %: i 60000) +: i 200));
              leti "hops" (i 0);
              leti "alive" (i 1);
              leti "dead_rolls" (i 0);
              while_ ((v "alive" =: i 1) &&: (v "hops" <: i 40))
                [
                  leti "gp" (call "group_of" [ v "energy" ]);
                  letf "sigma" (ld "xsect" (v "gp"));
                  leti "roll" (call "next_random" [] %: i 1000);
                  (* free flight: sample a path length and deposit dose
                     along it (the original's per-step physics block) *)
                  letf "path"
                    (neg (log_ ((to_float (v "roll") +: fl 1.0) *: fl 0.000999))
                    /: (v "sigma" +: fl 0.05));
                  letf "mu"
                    (cos_ (to_float (v "roll") *: fl 0.0063) *: fl 0.999);
                  letf "dose"
                    (v "path" *: v "sigma"
                    *: (fl 1.0 +: (v "mu" *: v "mu" *: fl 0.3))
                    *: exp_ (neg (v "path") *: fl 0.1));
                  gset "total_path" (g "total_path" +: v "path");
                  gset "total_dose" (g "total_dose" +: v "dose");
                  (* collision physics: absorption, scatter, leakage *)
                  if_ (to_float (v "roll") <: (v "sigma" *: fl 300.0))
                    [
                      (* absorbed *)
                      st "tally_abs" (v "gp") (ld "tally_abs" (v "gp") +: i 1);
                      set "alive" (i 0);
                    ]
                    [
                      if_ (v "roll" >=: i 970)
                        [
                          (* leaked out of the core *)
                          st "tally_leak" (band (v "roll") (i 3))
                            (ld "tally_leak" (band (v "roll") (i 3)) +: i 1);
                          set "alive" (i 0);
                        ]
                        [
                          (* scattered: lose energy, possibly upscatter *)
                          st "tally_scat" (v "gp") (ld "tally_scat" (v "gp") +: i 1);
                          if_ (v "roll" %: i 16 =: i 0)
                            [ set "energy" (v "energy" *: fl 1.08) ]
                            [
                              set "energy"
                                (v "energy"
                                *: (fl 0.55
                                   +: (to_float (v "roll" %: i 100) *: fl 0.003)));
                            ];
                          when_ (v "energy" <: fl 150.0)
                            [
                              (* thermalized: final capture race *)
                              when_ (v "roll" %: i 3 =: i 0) [ set "alive" (i 0) ];
                            ];
                        ];
                    ];
                  set "dead_rolls" (v "dead_rolls" +: v "roll");
                  incr_ "hops";
                ];
              set "alive_total" (v "alive_total" +: v "alive");
            ];
          leti "absorbed" (i 0);
          leti "scattered" (i 0);
          for_ "gp" (i 0) (i groups)
            [
              set "absorbed" (v "absorbed" +: ld "tally_abs" (v "gp"));
              set "scattered" (v "scattered" +: ld "tally_scat" (v "gp"));
            ];
          out (v "absorbed");
          out (v "scattered");
          out (v "alive_total");
          out (to_int (g "total_path"));
          out (to_int (g "total_dose" *: fl 10.0));
          ret (v "absorbed");
        ];
    ]

let dataset name particles descr =
  {
    Workload.ds_name = name;
    ds_descr = descr;
    ds_iargs = [];
    ds_fargs = [];
    ds_arrays = [ ("$particles", `Ints [| particles |]); ("$seed", `Ints [| 12345 |]) ];
  }

let workload =
  {
    Workload.w_name = "doduc";
    w_paper_name = "015.doduc";
    w_lang = Workload.Fortran_fp;
    w_descr = "nuclear reactor Monte-Carlo transport";
    w_program = program;
    w_seeded_globals = [ "particles"; "seed" ];
    w_datasets =
      [
        dataset "tiny" 900 "shortest SPEC-style input";
        dataset "small" 2500 "medium input";
        dataset "ref" 6000 "reference input";
      ];
  }
