(** 008.espresso analogue: PLA cube expansion + cover reduction with
    data-dependent early-exit intersection tests. *)

val program : Fisher92_minic.Ast.program
val max_vars : int

type pla = {
  n_vars : int;
  on : int array array;  (** cubes, per-variable codes 1/2/3 *)
  off : int array array;  (** OFF-set minterms, codes 1/2 *)
}

val generate_pla :
  seed:int -> n_vars:int -> n_generators:int -> n_on:int -> n_off:int -> pla
(** Sample a consistent PLA: ON cubes specialize hidden generator cubes,
    OFF minterms are rejection-sampled from the complement. *)

val minterm_matches : int array -> int -> bool
(** Does a cube cover a minterm (bit k of the int = variable k)? *)

val workload : Workload.t
