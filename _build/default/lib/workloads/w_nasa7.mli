(** 020.nasa7 analogue: seven reduced NASA Ames kernels (MXM, CFFT2D,
    CHOLSKY, banded solves, Gaussian elimination). *)

val program : Fisher92_minic.Ast.program
val workload : Workload.t
