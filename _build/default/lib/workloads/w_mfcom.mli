(** mfcom analogue: the Multiflow compiler's common optimizer and
    backend — value-numbering CSE, constant folding, backward-liveness
    DCE and linear-scan allocation over three-address IR streams with
    C-like vs FORTRAN-like statistics. *)

val program : Fisher92_minic.Ast.program

type flavour = C_like | Fortran_like

val gen_ir :
  seed:int ->
  flavour:flavour ->
  count:int ->
  int array * int array * int array * int array
(** [(iop, isrc1, isrc2, idst)] streams with the flavour's op mix. *)

val workload : Workload.t
