(** Common shape of the benchmark programs (Table 2 of the paper).

    A workload is one MiniC program plus the datasets it runs over.  Every
    dataset is generated deterministically (fixed seeds through
    {!Fisher92_util.Rng}), so experiments are exactly reproducible. *)

type lang = Fortran_fp | C_int

val lang_name : lang -> string
(** "FORTRAN/FP" or "C/Integer" — the paper's two program classes. *)

type dataset = {
  ds_name : string;
  ds_descr : string;
  ds_iargs : int list;  (** entry function integer arguments *)
  ds_fargs : float list;
  ds_arrays : (string * [ `Ints of int array | `Floats of float array ]) list;
      (** array seeds, by name; ["$g"] seeds global scalar [g] *)
}

type t = {
  w_name : string;
  w_paper_name : string;  (** the original program this one models *)
  w_lang : lang;
  w_descr : string;
  w_program : Fisher92_minic.Ast.program;
  w_seeded_globals : string list;
      (** globals that datasets overwrite (DCE must not constant-fold
          them) *)
  w_datasets : dataset list;
}

val dataset : t -> string -> dataset
(** Find a dataset by name.  @raise Not_found. *)

val compile_options : ?dce:bool -> ?inline:bool -> t -> Fisher92_minic.Compile.options
(** The paper-faithful options for this workload (threads
    [w_seeded_globals] into the DCE pass). *)
