(* compress / uncompress analogue: LZW with 12-bit codes, the algorithm of
   SPEC 3.0 compress (hash-probed dictionary on compression, stack-based
   expansion on decompression).

   As in the paper, compression and decompression are ONE program selected
   by a switch ("although compress is really two distinct programs ...
   it is one program as seen by our tools"), which is what makes the
   compress↔uncompress cross-prediction experiment possible: both modes
   share branch sites.

   Datasets mirror the paper's five: C source, a compiled image, the long
   reference text, FORTRAN source, and a second image.  [cmprssc] is
   deliberately the odd one out (it feeds incompressible bytes, flipping
   the hash-hit branches), reproducing "one dataset, cmprssc, was very
   different from the others". *)

open Fisher92_minic.Dsl

let max_input = 65536
let hsize = 8192 (* power of two, probe mask *)
let max_code = 4096

let program =
  program "compress" ~entry:"main"
    ~globals:[ gint "mode" 0; gint "n_in" 0 ]
    ~arrays:
      [
        iarr "input" max_input;
        iarr "htab" hsize;  (* key + 1, 0 = empty *)
        iarr "codetab" hsize;
        iarr "dict_prefix" max_code;
        iarr "dict_char" max_code;
        iarr "stack" max_code;
      ]
    [
      fn "do_compress" []
        [
          leti "n" (g "n_in");
          leti "next_code" (i 256);
          leti "code" (ld "input" (i 0));
          for_ "k" (i 1) (v "n")
            [
              leti "c" (ld "input" (v "k"));
              leti "key" ((v "code" *: i 256) +: v "c");
              (* open-addressed probe, like compress's hashing *)
              leti "h" (band (v "key" *: i 40503) (i (hsize - 1)));
              leti "step" (bor (band (shr (v "key") (i 6)) (i (hsize - 1))) (i 1));
              leti "found" (i 0);
              leti "probing" (i 1);
              while_ (v "probing" =: i 1)
                [
                  leti "slot" (ld "htab" (v "h"));
                  if_ (v "slot" =: i 0) [ set "probing" (i 0) ]
                    [
                      if_ (v "slot" =: v "key" +: i 1)
                        [ set "found" (i 1); set "probing" (i 0) ]
                        [ set "h" (band (v "h" +: v "step") (i (hsize - 1))) ];
                    ];
                ];
              if_ (v "found" =: i 1)
                [ set "code" (ld "codetab" (v "h")) ]
                [
                  out (v "code");
                  when_ (v "next_code" <: i max_code)
                    [
                      st "htab" (v "h") (v "key" +: i 1);
                      st "codetab" (v "h") (v "next_code");
                      incr_ "next_code";
                    ];
                  set "code" (v "c");
                ];
            ];
          out (v "code");
        ];
      fn "do_uncompress" []
        [
          leti "n" (g "n_in");
          leti "next_code" (i 256);
          leti "oldcode" (ld "input" (i 0));
          leti "finchar" (v "oldcode");
          out (v "oldcode");
          for_ "k" (i 1) (v "n")
            [
              leti "incode" (ld "input" (v "k"));
              leti "code" (v "incode");
              leti "sp" (i 0);
              (* KwKwK: code not yet in the dictionary *)
              when_ (v "code" >=: v "next_code")
                [
                  st "stack" (v "sp") (v "finchar");
                  incr_ "sp";
                  set "code" (v "oldcode");
                ];
              while_ (v "code" >=: i 256)
                [
                  st "stack" (v "sp") (ld "dict_char" (v "code"));
                  incr_ "sp";
                  set "code" (ld "dict_prefix" (v "code"));
                ];
              set "finchar" (v "code");
              out (v "finchar");
              while_ (v "sp" >: i 0)
                [
                  set "sp" (v "sp" -: i 1);
                  out (ld "stack" (v "sp"));
                ];
              when_ (v "next_code" <: i max_code)
                [
                  st "dict_prefix" (v "next_code") (v "oldcode");
                  st "dict_char" (v "next_code") (v "finchar");
                  incr_ "next_code";
                ];
              set "oldcode" (v "incode");
            ];
        ];
      fn "main" [] ~ret:Fisher92_minic.Ast.Tint
        [
          if_ (g "n_in" <=: i 0) [ ret (i 1) ] [];
          if_ (g "mode" =: i 0)
            [ expr_ (call "do_compress" []) ]
            [ expr_ (call "do_uncompress" []) ];
          ret (i 0);
        ];
    ]

(* ---------- reference implementation (tests + uncompress inputs) ---------- *)

let reference_compress (bytes : int array) : int array =
  let dict = Hashtbl.create 4096 in
  let next_code = ref 256 in
  let out = ref [] in
  let code = ref bytes.(0) in
  for k = 1 to Array.length bytes - 1 do
    let c = bytes.(k) in
    let key = (!code * 256) + c in
    match Hashtbl.find_opt dict key with
    | Some entry -> code := entry
    | None ->
      out := !code :: !out;
      if !next_code < max_code then begin
        Hashtbl.replace dict key !next_code;
        incr next_code
      end;
      code := c
  done;
  out := !code :: !out;
  Array.of_list (List.rev !out)

let reference_uncompress (codes : int array) : int array =
  let prefix = Array.make max_code 0 and final = Array.make max_code 0 in
  let next_code = ref 256 in
  let out = ref [] in
  let oldcode = ref codes.(0) in
  let finchar = ref codes.(0) in
  out := [ !oldcode ];
  for k = 1 to Array.length codes - 1 do
    let incode = codes.(k) in
    let stack = ref [] in
    let code = ref incode in
    if !code >= !next_code then begin
      stack := [ !finchar ];
      code := !oldcode
    end;
    while !code >= 256 do
      stack := final.(!code) :: !stack;
      code := prefix.(!code)
    done;
    finchar := !code;
    out := !code :: !out;
    List.iter (fun b -> out := b :: !out) !stack;
    if !next_code < max_code then begin
      prefix.(!next_code) <- !oldcode;
      final.(!next_code) <- !finchar;
      next_code := !next_code + 1
    end;
    oldcode := incode
  done;
  Array.of_list (List.rev !out)

(* ---------- datasets ---------- *)

let compress_dataset name descr bytes =
  let n = Array.length bytes in
  assert (n <= max_input);
  {
    Workload.ds_name = name;
    ds_descr = descr;
    ds_iargs = [];
    ds_fargs = [];
    ds_arrays =
      [
        ("$mode", `Ints [| 0 |]);
        ("$n_in", `Ints [| n |]);
        ("input", `Ints bytes);
      ];
  }

let uncompress_dataset name descr bytes =
  let codes = reference_compress bytes in
  let n = Array.length codes in
  assert (n <= max_input);
  {
    Workload.ds_name = name;
    ds_descr = descr ^ " (compressed form)";
    ds_iargs = [];
    ds_fargs = [];
    ds_arrays =
      [
        ("$mode", `Ints [| 1 |]);
        ("$n_in", `Ints [| n |]);
        ("input", `Ints codes);
      ];
  }

let inputs =
  lazy
    [
      ( "cmprssc",
        "incompressible bytes (the odd-one-out dataset)",
        Textgen.random_bytes ~seed:71 ~size:22000 );
      ( "cmprss",
        "compiled-image-like bytes",
        Textgen.binary_image ~seed:72 ~size:30000 );
      ("long", "long English-like reference text", Textgen.english ~seed:73 ~words:7000);
      ( "spicef",
        "FORTRAN source text",
        Textgen.fortran_source ~seed:74 ~lines:1100 );
      ( "spice",
        "second compiled image",
        Textgen.binary_image ~seed:75 ~size:26000 );
    ]

let workload =
  {
    Workload.w_name = "compress";
    w_paper_name = "compress (SPEC 3.0)";
    w_lang = Workload.C_int;
    w_descr = "UNIX LZW file compression";
    w_program = program;
    w_seeded_globals = [ "mode"; "n_in" ];
    w_datasets =
      List.map (fun (n, d, b) -> compress_dataset n d b) (Lazy.force inputs);
  }

let workload_uncompress =
  {
    Workload.w_name = "uncompress";
    w_paper_name = "compress -d";
    w_lang = Workload.C_int;
    w_descr = "LZW decompression (same binary as compress, mode switch)";
    w_program = program;
    w_seeded_globals = [ "mode"; "n_in" ];
    w_datasets =
      List.map (fun (n, d, b) -> uncompress_dataset n d b) (Lazy.force inputs);
  }
