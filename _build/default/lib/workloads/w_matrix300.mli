(** 030.matrix300 analogue: dense matrix multiply (see the implementation
    header for the modelling notes, including the synthesized Table 1
    dead code). *)

val program : Fisher92_minic.Ast.program

val reference_trace : int -> int
(** Expected value of the program's diagonal-trace output for size [n]
    (bit-exact: same operation order as the compiled code). *)

val workload : Workload.t
