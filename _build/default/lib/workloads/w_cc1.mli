(** 001.gcc analogue: a compiler front end (character-level lexer,
    recursive-descent parser into node arrays, constant folder,
    stack-code generator) run over six generated source modules. *)

val program : Fisher92_minic.Ast.program

val kw_hash : string -> int
(** The lexer's masked rolling identifier hash (exposed for tests). *)

(** Source-module generator shape: production weights per statement
    kind, comment density, expression depth, size budget. *)
type weights = {
  w_if : int;
  w_while : int;
  w_block : int;
  w_decl : int;
  w_assign : int;
  w_return : int;
  comment_pct : float;
  expr_depth : int;
  max_stmts : int;
}

val gen_module : seed:int -> weights -> int array
(** Generate one source module (bytes) conforming to the parser's
    grammar. *)

val workload : Workload.t
