type lang = Fortran_fp | C_int

let lang_name = function Fortran_fp -> "FORTRAN/FP" | C_int -> "C/Integer"

type dataset = {
  ds_name : string;
  ds_descr : string;
  ds_iargs : int list;
  ds_fargs : float list;
  ds_arrays : (string * [ `Ints of int array | `Floats of float array ]) list;
}

type t = {
  w_name : string;
  w_paper_name : string;
  w_lang : lang;
  w_descr : string;
  w_program : Fisher92_minic.Ast.program;
  w_seeded_globals : string list;
  w_datasets : dataset list;
}

let dataset t name =
  List.find (fun d -> String.equal d.ds_name name) t.w_datasets

let compile_options ?(dce = false) ?(inline = false) t =
  {
    Fisher92_minic.Compile.default_options with
    dce;
    inline;
    dce_seeded_globals = t.w_seeded_globals;
  }
