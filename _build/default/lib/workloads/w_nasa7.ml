(* 020.nasa7 analogue: the seven synthetic NASA Ames kernels (MXM, CFFT2D,
   CHOLSKY, BTRIX, GMTRY, EMIT, VPENTA), reduced in size but with the same
   loop structure per kernel: dense triple loops, butterfly strides,
   triangular dependence, banded solves.

   The original reads no dataset.  Table 1 charges nasa7 with 20% dynamic
   dead code; each kernel here carries an unconsumed diagnostic
   computation of about that weight, removable by [Passes.dce]. *)

open Fisher92_minic.Dsl

let n = 48 (* base dimension of every kernel *)
let nn = n * n

let idx r c = (v r *: i n) +: v c

let program =
  program "nasa7" ~entry:"main"
    ~globals:[ gint "reps" 2 ]
    ~arrays:
      [
        farr "ma" nn;
        farr "mb" nn;
        farr "mc" nn;
        farr "vre" 1024;
        farr "vim" 1024;
        farr "chol" nn;
        farr "band" (n * 16);
        farr "work" nn;
        farr "deadlog" nn;
      ]
    [
      fn "setup" []
        [
          for_ "r" (i 0) (i n)
            [
              for_ "c" (i 0) (i n)
                [
                  st "ma" (idx "r" "c")
                    (to_float (((v "r" *: i 5) +: (v "c" *: i 3)) %: i 17)
                    *: fl 0.0625);
                  st "mb" (idx "r" "c")
                    (to_float (((v "r" *: i 2) +: (v "c" *: i 7)) %: i 19)
                    *: fl 0.05);
                  (* SPD-ish matrix for cholsky *)
                  st "chol" (idx "r" "c")
                    (cond_ (v "r" =: v "c") (fl 40.0)
                       (fl 1.0
                       /: (to_float (imax (v "r" -: v "c") (v "c" -: v "r"))
                          +: fl 1.0)));
                ];
            ];
          for_ "k" (i 0) (i 1024)
            [
              st "vre" (v "k") (sin_ (to_float (v "k") *: fl 0.013));
              st "vim" (v "k") (cos_ (to_float (v "k") *: fl 0.017));
            ];
        ];
      (* MXM: matrix multiply *)
      fn "mxm" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          letf "trace" (fl 0.0);
          for_ "r" (i 0) (i n)
            [
              for_ "c" (i 0) (i n)
                [
                  letf "sum" (fl 0.0);
                  letf "deadsum" (fl 0.0);
                  for_ "k" (i 0) (i n)
                    [
                      set "sum" (v "sum" +: (ld "ma" (idx "r" "k") *: ld "mb" (idx "k" "c")));
                      set "deadsum" (v "deadsum" +: ld "mb" (idx "k" "c"));
                    ];
                  st "mc" (idx "r" "c") (v "sum");
                  when_ (v "r" =: v "c") [ set "trace" (v "trace" +: v "sum") ];
                ];
            ];
          ret (v "trace");
        ];
      (* CFFT2D: radix-2 butterfly passes over a complex vector *)
      fn "cfft" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          leti "span" (i 4);
          while_ (v "span" <: i 1024)
            [
              leti "j" (i 0);
              while_ (v "j" <: i 1024)
                [
                  leti "k" (v "j");
                  while_ (v "k" <: v "j" +: v "span")
                    [
                      leti "m" (v "k" +: v "span");
                      letf "wr" (cos_ (to_float (v "k" -: v "j") *: fl 0.0061));
                      letf "wi" (sin_ (to_float (v "k" -: v "j") *: fl 0.0061));
                      letf "tr" ((ld "vre" (v "m") *: v "wr") -: (ld "vim" (v "m") *: v "wi"));
                      letf "ti" ((ld "vre" (v "m") *: v "wi") +: (ld "vim" (v "m") *: v "wr"));
                      st "vre" (v "m") ((ld "vre" (v "k") -: v "tr") *: fl 0.5);
                      st "vim" (v "m") ((ld "vim" (v "k") -: v "ti") *: fl 0.5);
                      st "vre" (v "k") ((ld "vre" (v "k") +: v "tr") *: fl 0.5);
                      st "vim" (v "k") ((ld "vim" (v "k") +: v "ti") *: fl 0.5);
                      st "deadlog" (band (v "k") (i (nn - 1)))
                        ((v "tr" *: v "tr") +: (v "ti" *: v "ti"));
                      incr_ "k";
                    ];
                  set "j" (v "j" +: (v "span" *: i 2));
                ];
              set "span" (v "span" *: i 2);
            ];
          ret (ld "vre" (i 1) +: ld "vim" (i 2));
        ];
      (* CHOLSKY: Cholesky factorization (lower triangle into work) *)
      fn "cholsky" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          for_ "r" (i 0) (i n)
            [
              for_ "c" (i 0) (v "r" +: i 1)
                [
                  letf "sum" (ld "chol" (idx "r" "c"));
                  for_ "k" (i 0) (v "c")
                    [
                      set "sum"
                        (v "sum" -: (ld "work" (idx "r" "k") *: ld "work" (idx "c" "k")));
                    ];
                  if_ (v "r" =: v "c")
                    [ st "work" (idx "r" "c") (sqrt_ (abs_ (v "sum"))) ]
                    [
                      st "work" (idx "r" "c")
                        (v "sum" /: (ld "work" (idx "c" "c") +: fl 0.000001));
                    ];
                ];
            ];
          ret (ld "work" (i (nn - 1)));
        ];
      (* BTRIX/VPENTA flavour: banded back-substitutions *)
      fn "banded" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          for_ "r" (i 0) (i n)
            [
              for_ "b" (i 0) (i 16)
                [
                  st "band" ((v "r" *: i 16) +: v "b")
                    (sin_ (to_float ((v "r" *: i 16) +: v "b") *: fl 0.05));
                ];
            ];
          letf "acc" (fl 0.0);
          for_ "sweep" (i 0) (i 6)
            [
              for_ "r" (i 2) (i n)
                [
                  for_ "b" (i 0) (i 16)
                    [
                      leti "here" ((v "r" *: i 16) +: v "b");
                      st "band" (v "here")
                        ((ld "band" (v "here")
                         +: ld "band" (v "here" -: i 16)
                         +: (ld "band" (v "here" -: i 32) *: fl 0.5))
                        *: fl 0.4);
                    ];
                ];
              set "acc" (v "acc" +: ld "band" (i (16 * (n - 1))));
            ];
          ret (v "acc");
        ];
      (* GMTRY/EMIT flavour: gaussian elimination on mc *)
      fn "gauss" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          for_ "p" (i 0) (i (n - 1))
            [
              letf "pivot" (ld "mc" (idx "p" "p") +: fl 0.001);
              for_ "r" (v "p" +: i 1) (i n)
                [
                  letf "factor" (ld "mc" (idx "r" "p") /: v "pivot");
                  for_ "c" (v "p") (i n)
                    [
                      st "mc" (idx "r" "c")
                        (ld "mc" (idx "r" "c") -: (v "factor" *: ld "mc" (idx "p" "c")));
                    ];
                ];
            ];
          letf "det" (fl 1.0);
          for_ "d" (i 0) (i n)
            [ set "det" (v "det" *: (ld "mc" (idx "d" "d") +: fl 0.0001)) ];
          ret (v "det");
        ];
      fn "main" [] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "r" (g "reps");
          letf "sig" (fl 0.0);
          for_ "rep" (i 0) (v "r")
            [
              expr_ (call "setup" []);
              set "sig" (v "sig" +: call "mxm" []);
              set "sig" (v "sig" +: call "cfft" []);
              set "sig" (v "sig" +: call "cholsky" []);
              set "sig" (v "sig" +: call "banded" []);
              set "sig" (v "sig" +: call "gauss" []);
            ];
          out (to_int (v "sig" *: fl 1000.0));
          ret (i 0);
        ];
    ]

let workload =
  {
    Workload.w_name = "nasa7";
    w_paper_name = "020.nasa7";
    w_lang = Workload.Fortran_fp;
    w_descr = "seven synthetic kernels (MXM, CFFT2D, CHOLSKY, banded, gauss)";
    w_program = program;
    w_seeded_globals = [ "reps" ];
    w_datasets =
      [
        {
          ds_name = "self";
          ds_descr = "program generates its own data";
          ds_iargs = [];
          ds_fargs = [];
          ds_arrays = [ ("$reps", `Ints [| 2 |]) ];
        };
      ];
  }
