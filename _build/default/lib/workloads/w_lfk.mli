(** Livermore FORTRAN Kernels analogue: a battery of short numeric
    loops (hydro, inner product, tri-diagonal, recurrence, state,
    prefix sum, first difference). *)

val program : Fisher92_minic.Ast.program
val workload : Workload.t
