lib/workloads/w_doduc.ml: Fisher92_minic Workload
