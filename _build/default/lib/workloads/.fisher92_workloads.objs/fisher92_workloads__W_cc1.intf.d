lib/workloads/w_cc1.mli: Fisher92_minic Workload
