lib/workloads/w_nasa7.mli: Fisher92_minic Workload
