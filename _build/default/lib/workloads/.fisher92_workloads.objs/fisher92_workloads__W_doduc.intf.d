lib/workloads/w_doduc.mli: Fisher92_minic Workload
