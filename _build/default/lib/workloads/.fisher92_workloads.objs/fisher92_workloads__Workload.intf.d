lib/workloads/workload.mli: Fisher92_minic
