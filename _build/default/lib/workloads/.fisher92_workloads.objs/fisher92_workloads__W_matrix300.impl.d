lib/workloads/w_matrix300.ml: Array Fisher92_minic Workload
