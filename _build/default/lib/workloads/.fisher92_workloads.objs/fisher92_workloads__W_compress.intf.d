lib/workloads/w_compress.mli: Fisher92_minic Workload
