lib/workloads/workload.ml: Fisher92_minic List String
