lib/workloads/w_fpppp.ml: Fisher92_minic Fisher92_util List Printf Workload
