lib/workloads/w_mfcom.ml: Array Fisher92_minic Fisher92_util Workload
