lib/workloads/w_li.mli: Fisher92_minic Workload
