lib/workloads/textgen.ml: Array Buffer Char Fisher92_util Printf String
