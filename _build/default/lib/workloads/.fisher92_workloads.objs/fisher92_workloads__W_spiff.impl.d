lib/workloads/w_spiff.ml: Array Fisher92_minic Fisher92_util List Workload
