lib/workloads/registry.ml: Lazy List String W_cc1 W_compress W_doduc W_eqntott W_espresso W_fpppp W_lfk W_li W_matrix300 W_mfcom W_nasa7 W_spice W_spiff W_tomcatv Workload
