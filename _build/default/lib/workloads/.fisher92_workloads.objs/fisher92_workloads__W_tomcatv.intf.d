lib/workloads/w_tomcatv.mli: Fisher92_minic Workload
