lib/workloads/w_mfcom.mli: Fisher92_minic Workload
