lib/workloads/w_matrix300.mli: Fisher92_minic Workload
