lib/workloads/w_spice.mli: Fisher92_minic Workload
