lib/workloads/w_eqntott.ml: Array Fisher92_minic List Workload
