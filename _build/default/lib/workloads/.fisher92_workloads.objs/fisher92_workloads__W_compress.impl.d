lib/workloads/w_compress.ml: Array Fisher92_minic Hashtbl Lazy List Textgen Workload
