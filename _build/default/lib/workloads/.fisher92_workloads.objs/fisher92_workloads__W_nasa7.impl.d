lib/workloads/w_nasa7.ml: Fisher92_minic Workload
