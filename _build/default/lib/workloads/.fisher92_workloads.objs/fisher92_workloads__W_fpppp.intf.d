lib/workloads/w_fpppp.mli: Fisher92_minic Workload
