lib/workloads/w_spiff.mli: Fisher92_minic Workload
