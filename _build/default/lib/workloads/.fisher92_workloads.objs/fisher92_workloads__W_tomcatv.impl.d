lib/workloads/w_tomcatv.ml: Fisher92_minic Workload
