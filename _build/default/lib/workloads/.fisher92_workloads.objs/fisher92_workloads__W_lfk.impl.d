lib/workloads/w_lfk.ml: Fisher92_minic Workload
