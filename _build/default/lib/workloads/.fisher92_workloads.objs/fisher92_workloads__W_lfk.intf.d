lib/workloads/w_lfk.mli: Fisher92_minic Workload
