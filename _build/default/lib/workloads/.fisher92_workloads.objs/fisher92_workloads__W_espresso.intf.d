lib/workloads/w_espresso.mli: Fisher92_minic Workload
