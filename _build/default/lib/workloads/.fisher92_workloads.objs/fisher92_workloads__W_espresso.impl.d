lib/workloads/w_espresso.ml: Array Fisher92_minic Fisher92_util Lazy List Workload
