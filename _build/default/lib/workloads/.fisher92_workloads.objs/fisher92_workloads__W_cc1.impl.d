lib/workloads/w_cc1.ml: Array Buffer Char Fisher92_minic Fisher92_util List Printf String Textgen Workload
