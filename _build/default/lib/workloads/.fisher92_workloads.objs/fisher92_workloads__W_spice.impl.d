lib/workloads/w_spice.ml: Array Fisher92_minic Fisher92_util List Workload
