lib/workloads/w_li.ml: Array Fisher92_minic Hashtbl List Workload
