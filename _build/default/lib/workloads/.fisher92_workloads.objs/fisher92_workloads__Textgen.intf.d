lib/workloads/textgen.mli:
