lib/workloads/w_eqntott.mli: Fisher92_minic Workload
