(** compress / uncompress analogue: LZW with 12-bit codes.  One MiniC
    program with a mode switch (as in the paper, where both modes share
    branch sites), exposed as two workloads. *)

val program : Fisher92_minic.Ast.program

val reference_compress : int array -> int array
(** LZW compression with the same dictionary discipline as the MiniC
    program; used to build the uncompress datasets and as the test
    oracle. *)

val reference_uncompress : int array -> int array
(** Inverse of {!reference_compress}. *)

val workload : Workload.t  (** compression over the five paper datasets *)

val workload_uncompress : Workload.t
(** decompression of the same five inputs (compressed forms) *)
