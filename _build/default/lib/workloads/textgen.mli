(** Deterministic synthetic input texts.

    Stand-ins for the paper's file inputs (C sources, FORTRAN sources,
    English-ish reference data, compiled images): byte streams with the
    right statistical character for the compression and compilation
    workloads.  Every generator is a pure function of its seed. *)

val c_source : seed:int -> lines:int -> int array
(** C-flavoured source text as bytes: declarations, assignments, braces,
    [if]/[for]/[while]/[return] keywords, operators, comments. *)

val fortran_source : seed:int -> lines:int -> int array
(** FORTRAN-flavoured source: column-6 continuation style, DO loops,
    uppercase keywords, arithmetic statements. *)

val english : seed:int -> words:int -> int array
(** English-like word salad with Zipf-ish word reuse — highly
    compressible, like the SPEC reference text. *)

val binary_image : seed:int -> size:int -> int array
(** Compiled-image-like bytes: structured header + mixed low-entropy
    tables and high-entropy code-ish sections. *)

val random_bytes : seed:int -> size:int -> int array
(** Incompressible noise (every byte uniform). *)

val float_table : seed:int -> rows:int -> jitter:float -> string
(** Rows of floating-point numbers rendered as text, for the spiff
    datasets; [jitter] perturbs a fixed base table. *)

val to_bytes : string -> int array
(** Byte array of a string. *)
