(* 001.gcc (cc1) analogue: a compiler front end compiling C-like modules.

   Three real phases over real source text: a character-level lexer
   (whitespace/comment skipping, identifier/keyword discrimination,
   number scanning), a recursive-descent parser building an AST into node
   arrays, a constant-folding pass, and a stack-machine code generator.
   This is the paper's "systems code": branch-dense (a conditional every
   handful of instructions), table-free dispatch, data-dependent paths
   set by the source text being compiled.

   The six datasets play the role of the six SPEC compiler modules the
   paper reports on: same program, different module character
   (expression-heavy, control-heavy, declaration-heavy, comment-heavy,
   flat, deeply nested).

   Tokens: 1 ident, 2 number, 3 +, 4 -, 5 *, 6 /, 7 <, 8 ==, 9 =,
   10 (, 11 ), 12 {, 13 }, 14 ;, 15 if, 16 else, 17 while, 18 int,
   19 return, 0 EOF.
   AST kinds: 1 num, 2 var, 3 binop (operator token in val), 4 neg,
   5 assign, 6 decl, 7 if, 8 while, 9 block, 10 return, 11 exprstmt. *)

open Fisher92_minic.Dsl

let max_src = 32768

(* the lexer's rolling hash, mirrored for the keyword table *)
let kw_hash s =
  String.fold_left (fun h c -> ((h * 31) + Char.code c) land 0xFFFFFFF) 0 s
let max_toks = 8192
let max_nodes = 8192

let program =
  program "cc1" ~entry:"main"
    ~globals:
      [
        gint "src_len" 0;
        gint "pos" 0;  (* lexer cursor *)
        gint "n_toks" 0;
        gint "cursor" 0;  (* parser cursor *)
        gint "n_nodes" 0;
        gint "n_errors" 0;
        gint "n_folds" 0;
        gint "n_ops" 0;
        gint "op_checksum" 0;
      ]
    ~arrays:
      [
        iarr "src" max_src;
        iarr "tok_kind" max_toks;
        iarr "tok_val" max_toks;
        iarr "node_kind" max_nodes;
        iarr "node_a" max_nodes;
        iarr "node_b" max_nodes;
        iarr "node_c" max_nodes;
        iarr "node_val" max_nodes;
        iarr "node_next" max_nodes;
      ]
    [
      (* ---------- lexer ---------- *)
      fn "is_alpha" [ pi "ch" ] ~ret:Fisher92_minic.Ast.Tint
        [
          ret
            (((v "ch" >=: i 97) &&: (v "ch" <=: i 122))
            ||: (v "ch" =: i 95));
        ];
      fn "is_digit" [ pi "ch" ] ~ret:Fisher92_minic.Ast.Tint
        [ ret ((v "ch" >=: i 48) &&: (v "ch" <=: i 57)) ];
      (* keyword table: returns token kind, or 1 (ident) *)
      fn "keyword" [ pi "h"; pi "len" ] ~ret:Fisher92_minic.Ast.Tint
        [
          (* h is the lexer's masked rolling hash; keywords are
             recognized by (len, h) *)
          when_ ((v "len" =: i 2) &&: (v "h" =: i (kw_hash "if"))) [ ret (i 15) ];
          when_ ((v "len" =: i 4) &&: (v "h" =: i (kw_hash "else"))) [ ret (i 16) ];
          when_ ((v "len" =: i 5) &&: (v "h" =: i (kw_hash "while"))) [ ret (i 17) ];
          when_ ((v "len" =: i 3) &&: (v "h" =: i (kw_hash "int"))) [ ret (i 18) ];
          when_ ((v "len" =: i 6) &&: (v "h" =: i (kw_hash "return"))) [ ret (i 19) ];
          ret (i 1);
        ];
      fn "emit_tok" [ pi "kind"; pi "value" ]
        [
          when_ (g "n_toks" <: i (max_toks - 1))
            [
              st "tok_kind" (g "n_toks") (v "kind");
              st "tok_val" (g "n_toks") (v "value");
              gset "n_toks" (g "n_toks" +: i 1);
            ];
        ];
      fn "lex" []
        [
          leti "n" (g "src_len");
          leti "dead_chars" (i 0);
          while_ (g "pos" <: v "n")
            [
              leti "ch" (ld "src" (g "pos"));
              set "dead_chars" (v "dead_chars" +: v "ch");
              (* whitespace *)
              if_ ((v "ch" =: i 32) ||: (v "ch" =: i 10) ||: (v "ch" =: i 9))
                [ gset "pos" (g "pos" +: i 1) ]
                [
                  (* comment: / * ... * / *)
                  if_
                    ((v "ch" =: i 47)
                    &&: (g "pos" +: i 1 <: v "n")
                    &&: (ld "src" (g "pos" +: i 1) =: i 42))
                    [
                      gset "pos" (g "pos" +: i 2);
                      leti "closed" (i 0);
                      while_ ((v "closed" =: i 0) &&: (g "pos" +: i 1 <: v "n"))
                        [
                          if_
                            ((ld "src" (g "pos") =: i 42)
                            &&: (ld "src" (g "pos" +: i 1) =: i 47))
                            [ set "closed" (i 1); gset "pos" (g "pos" +: i 2) ]
                            [ gset "pos" (g "pos" +: i 1) ];
                        ];
                    ]
                    [
                      if_ (call "is_alpha" [ v "ch" ] =: i 1)
                        [
                          (* identifier or keyword *)
                          leti "h" (i 0);
                          leti "len" (i 0);
                          while_
                            ((g "pos" <: v "n")
                            &&: ((call "is_alpha" [ ld "src" (g "pos") ] =: i 1)
                                ||: (call "is_digit" [ ld "src" (g "pos") ] =: i 1)))
                            [
                              set "h" (band ((v "h" *: i 31) +: ld "src" (g "pos")) (i 0xFFFFFFF));
                              incr_ "len";
                              gset "pos" (g "pos" +: i 1);
                            ];
                          leti "kind" (call "keyword" [ v "h"; v "len" ]);
                          if_ (v "kind" =: i 1)
                            [ expr_ (call "emit_tok" [ i 1; v "h" ]) ]
                            [ expr_ (call "emit_tok" [ v "kind"; i 0 ]) ];
                        ]
                        [
                          if_ (call "is_digit" [ v "ch" ] =: i 1)
                            [
                              leti "num" (i 0);
                              while_
                                ((g "pos" <: v "n")
                                &&: (call "is_digit" [ ld "src" (g "pos") ] =: i 1))
                                [
                                  set "num"
                                    ((v "num" *: i 10) +: ld "src" (g "pos") -: i 48);
                                  gset "pos" (g "pos" +: i 1);
                                ];
                              expr_ (call "emit_tok" [ i 2; v "num" ]);
                            ]
                            [
                              (* operators and punctuation *)
                              gset "pos" (g "pos" +: i 1);
                              switch_ (v "ch")
                                [
                                  case 43 [ expr_ (call "emit_tok" [ i 3; i 0 ]) ];
                                  case 45 [ expr_ (call "emit_tok" [ i 4; i 0 ]) ];
                                  case 42 [ expr_ (call "emit_tok" [ i 5; i 0 ]) ];
                                  case 47 [ expr_ (call "emit_tok" [ i 6; i 0 ]) ];
                                  case 60 [ expr_ (call "emit_tok" [ i 7; i 0 ]) ];
                                  case 61
                                    [
                                      (* '=' or '==' *)
                                      if_
                                        ((g "pos" <: v "n")
                                        &&: (ld "src" (g "pos") =: i 61))
                                        [
                                          gset "pos" (g "pos" +: i 1);
                                          expr_ (call "emit_tok" [ i 8; i 0 ]);
                                        ]
                                        [ expr_ (call "emit_tok" [ i 9; i 0 ]) ];
                                    ];
                                  case 40 [ expr_ (call "emit_tok" [ i 10; i 0 ]) ];
                                  case 41 [ expr_ (call "emit_tok" [ i 11; i 0 ]) ];
                                  case 123 [ expr_ (call "emit_tok" [ i 12; i 0 ]) ];
                                  case 125 [ expr_ (call "emit_tok" [ i 13; i 0 ]) ];
                                  case 59 [ expr_ (call "emit_tok" [ i 14; i 0 ]) ];
                                ]
                                [ gset "n_errors" (g "n_errors" +: i 1) ];
                            ];
                        ];
                    ];
                ];
            ];
          expr_ (call "emit_tok" [ i 0; i 0 ]);
        ];
      (* ---------- parser ---------- *)
      fn "peek" [] ~ret:Fisher92_minic.Ast.Tint [ ret (ld "tok_kind" (g "cursor")) ];
      fn "advance" [] [ gset "cursor" (g "cursor" +: i 1) ];
      fn "expect" [ pi "kind" ]
        [
          if_ (call "peek" [] =: v "kind")
            [ expr_ (call "advance" []) ]
            [ gset "n_errors" (g "n_errors" +: i 1); expr_ (call "advance" []) ];
        ];
      fn "new_node" [ pi "kind"; pi "a"; pi "b"; pi "value" ] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "id" (g "n_nodes");
          when_ (v "id" >=: i max_nodes)
            [ gset "n_errors" (g "n_errors" +: i 1); ret (v "id" -: i 1) ];
          st "node_kind" (v "id") (v "kind");
          st "node_a" (v "id") (v "a");
          st "node_b" (v "id") (v "b");
          st "node_c" (v "id") (i (-1));
          st "node_val" (v "id") (v "value");
          st "node_next" (v "id") (i (-1));
          gset "n_nodes" (g "n_nodes" +: i 1);
          ret (v "id");
        ];
      fn "parse_factor" [] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "k" (call "peek" []);
          when_ (v "k" =: i 2)
            [
              leti "value" (ld "tok_val" (g "cursor"));
              expr_ (call "advance" []);
              ret (call "new_node" [ i 1; i (-1); i (-1); v "value" ]);
            ];
          when_ (v "k" =: i 1)
            [
              leti "h" (ld "tok_val" (g "cursor"));
              expr_ (call "advance" []);
              ret (call "new_node" [ i 2; i (-1); i (-1); v "h" ]);
            ];
          when_ (v "k" =: i 10)
            [
              expr_ (call "advance" []);
              leti "inner" (call "parse_expr" []);
              expr_ (call "expect" [ i 11 ]);
              ret (v "inner");
            ];
          when_ (v "k" =: i 4)
            [
              expr_ (call "advance" []);
              leti "operand" (call "parse_factor" []);
              ret (call "new_node" [ i 4; v "operand"; i (-1); i 0 ]);
            ];
          (* error recovery: consume and fabricate a zero *)
          gset "n_errors" (g "n_errors" +: i 1);
          expr_ (call "advance" []);
          ret (call "new_node" [ i 1; i (-1); i (-1); i 0 ]);
        ];
      fn "parse_term" [] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "left" (call "parse_factor" []);
          leti "k" (call "peek" []);
          while_ ((v "k" =: i 5) ||: (v "k" =: i 6))
            [
              expr_ (call "advance" []);
              leti "right" (call "parse_factor" []);
              set "left" (call "new_node" [ i 3; v "left"; v "right"; v "k" ]);
              set "k" (call "peek" []);
            ];
          ret (v "left");
        ];
      fn "parse_expr" [] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "left" (call "parse_term" []);
          leti "k" (call "peek" []);
          while_
            ((v "k" =: i 3) ||: (v "k" =: i 4) ||: (v "k" =: i 7) ||: (v "k" =: i 8))
            [
              expr_ (call "advance" []);
              leti "right" (call "parse_term" []);
              set "left" (call "new_node" [ i 3; v "left"; v "right"; v "k" ]);
              set "k" (call "peek" []);
            ];
          ret (v "left");
        ];
      fn "parse_stmt" [] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "k" (call "peek" []);
          (* if ( expr ) stmt [else stmt] *)
          when_ (v "k" =: i 15)
            [
              expr_ (call "advance" []);
              expr_ (call "expect" [ i 10 ]);
              leti "cond" (call "parse_expr" []);
              expr_ (call "expect" [ i 11 ]);
              leti "then_n" (call "parse_stmt" []);
              leti "node" (call "new_node" [ i 7; v "cond"; v "then_n"; i 0 ]);
              when_ (call "peek" [] =: i 16)
                [
                  expr_ (call "advance" []);
                  leti "else_n" (call "parse_stmt" []);
                  st "node_c" (v "node") (v "else_n");
                ];
              ret (v "node");
            ];
          (* while ( expr ) stmt *)
          when_ (v "k" =: i 17)
            [
              expr_ (call "advance" []);
              expr_ (call "expect" [ i 10 ]);
              leti "wcond" (call "parse_expr" []);
              expr_ (call "expect" [ i 11 ]);
              leti "wbody" (call "parse_stmt" []);
              ret (call "new_node" [ i 8; v "wcond"; v "wbody"; i 0 ]);
            ];
          (* { stmt* } *)
          when_ (v "k" =: i 12)
            [
              expr_ (call "advance" []);
              leti "head" (i (-1));
              leti "tail" (i (-1));
              while_ ((call "peek" [] <>: i 13) &&: (call "peek" [] <>: i 0))
                [
                  leti "child" (call "parse_stmt" []);
                  if_ (v "tail" =: i (-1))
                    [ set "head" (v "child") ]
                    [ st "node_next" (v "tail") (v "child") ];
                  set "tail" (v "child");
                ];
              expr_ (call "expect" [ i 13 ]);
              ret (call "new_node" [ i 9; v "head"; i (-1); i 0 ]);
            ];
          (* int ident = expr ; *)
          when_ (v "k" =: i 18)
            [
              expr_ (call "advance" []);
              leti "h" (ld "tok_val" (g "cursor"));
              expr_ (call "expect" [ i 1 ]);
              expr_ (call "expect" [ i 9 ]);
              leti "init" (call "parse_expr" []);
              expr_ (call "expect" [ i 14 ]);
              ret (call "new_node" [ i 6; v "init"; i (-1); v "h" ]);
            ];
          (* return expr ; *)
          when_ (v "k" =: i 19)
            [
              expr_ (call "advance" []);
              leti "value" (call "parse_expr" []);
              expr_ (call "expect" [ i 14 ]);
              ret (call "new_node" [ i 10; v "value"; i (-1); i 0 ]);
            ];
          (* ident = expr ;  |  expression statement *)
          when_ ((v "k" =: i 1) &&: (ld "tok_kind" (g "cursor" +: i 1) =: i 9))
            [
              leti "ah" (ld "tok_val" (g "cursor"));
              expr_ (call "advance" []);
              expr_ (call "advance" []);
              leti "rhs" (call "parse_expr" []);
              expr_ (call "expect" [ i 14 ]);
              ret (call "new_node" [ i 5; v "rhs"; i (-1); v "ah" ]);
            ];
          leti "e" (call "parse_expr" []);
          expr_ (call "expect" [ i 14 ]);
          ret (call "new_node" [ i 11; v "e"; i (-1); i 0 ]);
        ];
      (* ---------- constant folding ---------- *)
      fn "fold" [ pi "node" ] ~ret:Fisher92_minic.Ast.Tint
        [
          when_ (v "node" =: i (-1)) [ ret (i (-1)) ];
          leti "k" (ld "node_kind" (v "node"));
          (* fold children first *)
          when_ ((v "k" <>: i 1) &&: (v "k" <>: i 2))
            [
              st "node_a" (v "node") (call "fold" [ ld "node_a" (v "node") ]);
              st "node_b" (v "node") (call "fold" [ ld "node_b" (v "node") ]);
              st "node_c" (v "node") (call "fold" [ ld "node_c" (v "node") ]);
            ];
          (* chase statement chains *)
          when_ (ld "node_next" (v "node") <>: i (-1))
            [ st "node_next" (v "node") (call "fold" [ ld "node_next" (v "node") ]) ];
          (* binop of two numbers -> number *)
          when_ (v "k" =: i 3)
            [
              leti "na" (ld "node_a" (v "node"));
              leti "nb" (ld "node_b" (v "node"));
              when_
                ((ld "node_kind" (v "na") =: i 1)
                &&: (ld "node_kind" (v "nb") =: i 1))
                [
                  leti "x" (ld "node_val" (v "na"));
                  leti "y" (ld "node_val" (v "nb"));
                  leti "r" (i 0);
                  leti "ok" (i 1);
                  switch_ (ld "node_val" (v "node"))
                    [
                      case 3 [ set "r" (v "x" +: v "y") ];
                      case 4 [ set "r" (v "x" -: v "y") ];
                      case 5 [ set "r" (v "x" *: v "y") ];
                      case 6
                        [
                          if_ (v "y" =: i 0) [ set "ok" (i 0) ]
                            [ set "r" (v "x" /: v "y") ];
                        ];
                      case 7 [ set "r" (v "x" <: v "y") ];
                      case 8 [ set "r" (v "x" =: v "y") ];
                    ]
                    [ set "ok" (i 0) ];
                  when_ (v "ok" =: i 1)
                    [
                      st "node_kind" (v "node") (i 1);
                      st "node_val" (v "node") (v "r");
                      gset "n_folds" (g "n_folds" +: i 1);
                    ];
                ];
            ];
          (* neg of number *)
          when_ (v "k" =: i 4)
            [
              leti "nn" (ld "node_a" (v "node"));
              when_ (ld "node_kind" (v "nn") =: i 1)
                [
                  st "node_kind" (v "node") (i 1);
                  st "node_val" (v "node") (neg (ld "node_val" (v "nn")));
                  gset "n_folds" (g "n_folds" +: i 1);
                ];
            ];
          ret (v "node");
        ];
      (* ---------- code generation (stack machine) ---------- *)
      fn "emit" [ pi "op" ]
        [
          gset "n_ops" (g "n_ops" +: i 1);
          gset "op_checksum" (band ((g "op_checksum" *: i 131) +: v "op") (i 0xFFFFFF));
        ];
      fn "gen" [ pi "node" ]
        [
          when_ (v "node" =: i (-1)) [ ret0 ];
          leti "k" (ld "node_kind" (v "node"));
          switch_ (v "k")
            [
              case 1 [ expr_ (call "emit" [ i 1 ]) ];  (* push *)
              case 2 [ expr_ (call "emit" [ i 2 ]) ];  (* load *)
              case 3
                [
                  expr_ (call "gen" [ ld "node_a" (v "node") ]);
                  expr_ (call "gen" [ ld "node_b" (v "node") ]);
                  expr_ (call "emit" [ i 10 +: ld "node_val" (v "node") ]);
                ];
              case 4
                [
                  expr_ (call "gen" [ ld "node_a" (v "node") ]);
                  expr_ (call "emit" [ i 3 ]);
                ];
              cases [ 5; 6 ]
                [
                  expr_ (call "gen" [ ld "node_a" (v "node") ]);
                  expr_ (call "emit" [ i 4 ]);  (* store *)
                ];
              case 7
                [
                  expr_ (call "gen" [ ld "node_a" (v "node") ]);
                  expr_ (call "emit" [ i 5 ]);  (* jz *)
                  expr_ (call "gen" [ ld "node_b" (v "node") ]);
                  when_ (ld "node_c" (v "node") <>: i (-1))
                    [
                      expr_ (call "emit" [ i 6 ]);  (* jmp over else *)
                      expr_ (call "gen" [ ld "node_c" (v "node") ]);
                    ];
                ];
              case 8
                [
                  expr_ (call "gen" [ ld "node_a" (v "node") ]);
                  expr_ (call "emit" [ i 5 ]);
                  expr_ (call "gen" [ ld "node_b" (v "node") ]);
                  expr_ (call "emit" [ i 6 ]);
                ];
              case 9
                [
                  leti "child" (ld "node_a" (v "node"));
                  while_ (v "child" <>: i (-1))
                    [
                      expr_ (call "gen" [ v "child" ]);
                      set "child" (ld "node_next" (v "child"));
                    ];
                ];
              case 10
                [
                  expr_ (call "gen" [ ld "node_a" (v "node") ]);
                  expr_ (call "emit" [ i 7 ]);  (* ret *)
                ];
              case 11
                [
                  expr_ (call "gen" [ ld "node_a" (v "node") ]);
                  expr_ (call "emit" [ i 8 ]);  (* pop *)
                ];
            ]
            [ gset "n_errors" (g "n_errors" +: i 1) ];
        ];
      fn "main" [] ~ret:Fisher92_minic.Ast.Tint
        [
          expr_ (call "lex" []);
          (* parse a statement list until EOF *)
          leti "head" (i (-1));
          leti "tail" (i (-1));
          while_ ((call "peek" [] <>: i 0) &&: (g "n_nodes" <: i (max_nodes - 64)))
            [
              leti "s" (call "parse_stmt" []);
              if_ (v "tail" =: i (-1))
                [ set "head" (v "s") ]
                [ st "node_next" (v "tail") (v "s") ];
              set "tail" (v "s");
            ];
          leti "root" (call "new_node" [ i 9; v "head"; i (-1); i 0 ]);
          set "root" (call "fold" [ v "root" ]);
          expr_ (call "gen" [ v "root" ]);
          out (g "n_toks");
          out (g "n_nodes");
          out (g "n_folds");
          out (g "n_ops");
          out (g "op_checksum");
          out (g "n_errors");
          ret (g "n_errors");
        ];
    ]

(* ---------- source module generation (matches the grammar) ---------- *)

module Rng = Fisher92_util.Rng

type weights = {
  w_if : int;
  w_while : int;
  w_block : int;
  w_decl : int;
  w_assign : int;
  w_return : int;
  comment_pct : float;
  expr_depth : int;
  max_stmts : int;
}

let gen_module ~seed w =
  let rng = Rng.create seed in
  let buf = Buffer.create 8192 in
  let idents = [| "a"; "b"; "count"; "tmp"; "acc"; "n"; "x"; "y"; "limit" |] in
  let ident () = Rng.pick rng idents in
  let rec expr depth =
    let term d =
      let factor () =
        match Rng.int rng 6 with
        | 0 | 1 -> string_of_int (Rng.int rng 500)
        | 2 | 3 | 4 -> ident ()
        | _ when d > 0 -> "(" ^ expr (d - 1) ^ ")"
        | _ -> "-" ^ ident ()
      in
      let parts = 1 + Rng.int rng 2 in
      String.concat (Rng.pick rng [| " * "; " / " |])
        (List.init parts (fun _ -> factor ()))
    in
    let parts = 1 + Rng.int rng 3 in
    String.concat
      (Rng.pick rng [| " + "; " - "; " < "; " == " |])
      (List.init parts (fun _ -> term depth))
  in
  let rec stmt depth =
    if Rng.chance rng w.comment_pct then
      Buffer.add_string buf (Printf.sprintf "/* %s %s */\n" (ident ()) (ident ()));
    let total = w.w_if + w.w_while + w.w_block + w.w_decl + w.w_assign + w.w_return in
    let roll = Rng.int rng total in
    let pick_if = w.w_if in
    let pick_while = pick_if + w.w_while in
    let pick_block = pick_while + w.w_block in
    let pick_decl = pick_block + w.w_decl in
    let pick_assign = pick_decl + w.w_assign in
    if roll < pick_if && depth < 4 then begin
      Buffer.add_string buf (Printf.sprintf "if (%s)\n" (expr w.expr_depth));
      stmt (depth + 1);
      if Rng.chance rng 0.4 then begin
        Buffer.add_string buf "else\n";
        stmt (depth + 1)
      end
    end
    else if roll < pick_while && depth < 4 then begin
      Buffer.add_string buf (Printf.sprintf "while (%s)\n" (expr w.expr_depth));
      stmt (depth + 1)
    end
    else if roll < pick_block && depth < 4 then begin
      Buffer.add_string buf "{\n";
      let inner = 1 + Rng.int rng 4 in
      for _ = 1 to inner do
        stmt (depth + 1)
      done;
      Buffer.add_string buf "}\n"
    end
    else if roll < pick_decl then
      Buffer.add_string buf
        (Printf.sprintf "int %s = %s;\n" (ident ()) (expr w.expr_depth))
    else if roll < pick_assign then
      Buffer.add_string buf
        (Printf.sprintf "%s = %s;\n" (ident ()) (expr w.expr_depth))
    else
      Buffer.add_string buf (Printf.sprintf "return %s;\n" (expr w.expr_depth))
  in
  let guard = ref 0 in
  while Buffer.length buf < w.max_stmts * 24 && !guard < w.max_stmts do
    incr guard;
    stmt 0
  done;
  Textgen.to_bytes (Buffer.contents buf)

let dataset name descr ~seed w =
  let src = gen_module ~seed w in
  assert (Array.length src <= max_src);
  {
    Workload.ds_name = name;
    ds_descr = descr;
    ds_iargs = [];
    ds_fargs = [];
    ds_arrays =
      [ ("$src_len", `Ints [| Array.length src |]); ("src", `Ints src) ];
  }

let base =
  {
    w_if = 2;
    w_while = 1;
    w_block = 2;
    w_decl = 2;
    w_assign = 4;
    w_return = 1;
    comment_pct = 0.08;
    expr_depth = 2;
    max_stmts = 700;
  }

let workload =
  {
    Workload.w_name = "cc1";
    w_paper_name = "001.gcc 1.35";
    w_lang = Workload.C_int;
    w_descr = "compiler front end: lexer, parser, folder, code generator";
    w_program = program;
    w_seeded_globals =
      [ "src_len"; "pos"; "n_toks"; "cursor"; "n_nodes"; "n_errors"; "n_folds";
        "n_ops"; "op_checksum" ];
    w_datasets =
      [
        dataset "insn-emit" "expression-heavy module" ~seed:901
          { base with w_assign = 8; expr_depth = 3; w_if = 1 };
        dataset "jump" "control-heavy module" ~seed:902
          { base with w_if = 5; w_while = 3; w_assign = 2 };
        dataset "decl" "declaration-heavy module" ~seed:903
          { base with w_decl = 8; w_assign = 2; expr_depth = 1 };
        dataset "stmt" "comment-heavy flat module" ~seed:904
          { base with comment_pct = 0.45; w_block = 0; w_if = 1 };
        dataset "fold-const" "numeric module (lots of foldable constants)" ~seed:905
          { base with w_assign = 9; w_decl = 4; expr_depth = 3; w_if = 0 };
        dataset "recog" "deeply nested module" ~seed:906
          { base with w_block = 6; w_if = 4; w_while = 2 };
      ];
  }
