(* spiff analogue: file comparison with floating-point tolerance.

   spiff diffs two files treating embedded floating-point numbers as
   equal when they differ by less than a tolerance.  The program here
   does exactly that: two token streams (per line: a hash for the text
   part plus up to three parsed floats), an O(n*m) LCS dynamic program
   over the line-equality predicate, and a backward walk emitting the
   edit script.  The DP's equality test and the tolerant float compare
   dominate the branches.

   Datasets mirror the paper's: case1/case2 are tables of floating-point
   numbers with scattered small differences (within and beyond the
   tolerance), case3 is a pair of directory-listing-like files differing
   only in their last few lines. *)

open Fisher92_minic.Dsl
module Rng = Fisher92_util.Rng

let max_lines = 220
let floats_per_line = 3

let program =
  program "spiff" ~entry:"main"
    ~globals:[ gint "n_a" 0; gint "n_b" 0; gfloat "tolerance" 0.001 ]
    ~arrays:
      [
        iarr "hash_a" max_lines;
        iarr "hash_b" max_lines;
        iarr "nf_a" max_lines;  (* floats on each line *)
        iarr "nf_b" max_lines;
        farr "fl_a" (max_lines * floats_per_line);
        farr "fl_b" (max_lines * floats_per_line);
        iarr "lcs" ((max_lines + 1) * (max_lines + 1));
        iarr "script" (2 * max_lines);  (* edit ops: 1 del, 2 add, 3 keep *)
      ]
    [
      (* tolerant line equality: hashes must match structurally, floats
         must agree within tolerance *)
      fn "lines_equal" [ pi "la"; pi "lb" ] ~ret:Fisher92_minic.Ast.Tint
        [
          when_ (ld "hash_a" (v "la") <>: ld "hash_b" (v "lb")) [ ret (i 0) ];
          when_ (ld "nf_a" (v "la") <>: ld "nf_b" (v "lb")) [ ret (i 0) ];
          leti "nf" (ld "nf_a" (v "la"));
          letf "tol" (g "tolerance");
          for_ "j" (i 0) (v "nf")
            [
              letf "d"
                (abs_
                   (ld "fl_a" ((v "la" *: i floats_per_line) +: v "j")
                   -: ld "fl_b" ((v "lb" *: i floats_per_line) +: v "j")));
              when_ (v "d" >: v "tol") [ ret (i 0) ];
            ];
          ret (i 1);
        ];
      fn "main" [] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "na" (g "n_a");
          leti "nb" (g "n_b");
          leti "width" (v "nb" +: i 1);
          (* LCS table, bottom-up *)
          leti "r" (v "na" -: i 1);
          while_ (v "r" >=: i 0)
            [
              leti "c" (v "nb" -: i 1);
              while_ (v "c" >=: i 0)
                [
                  if_ (call "lines_equal" [ v "r"; v "c" ] =: i 1)
                    [
                      st "lcs" ((v "r" *: v "width") +: v "c")
                        (i 1 +: ld "lcs" (((v "r" +: i 1) *: v "width") +: v "c" +: i 1));
                    ]
                    [
                      st "lcs" ((v "r" *: v "width") +: v "c")
                        (imax
                           (ld "lcs" (((v "r" +: i 1) *: v "width") +: v "c"))
                           (ld "lcs" ((v "r" *: v "width") +: v "c" +: i 1)));
                    ];
                  set "c" (v "c" -: i 1);
                ];
              set "r" (v "r" -: i 1);
            ];
          (* walk the table, emit the edit script *)
          leti "x" (i 0);
          leti "y" (i 0);
          leti "dels" (i 0);
          leti "adds" (i 0);
          leti "keeps" (i 0);
          leti "sp" (i 0);
          while_ ((v "x" <: v "na") &&: (v "y" <: v "nb"))
            [
              if_ (call "lines_equal" [ v "x"; v "y" ] =: i 1)
                [
                  st "script" (v "sp") (i 3);
                  incr_ "keeps";
                  incr_ "x";
                  incr_ "y";
                ]
                [
                  if_
                    (ld "lcs" (((v "x" +: i 1) *: v "width") +: v "y")
                    >=: ld "lcs" ((v "x" *: v "width") +: v "y" +: i 1))
                    [ st "script" (v "sp") (i 1); incr_ "dels"; incr_ "x" ]
                    [ st "script" (v "sp") (i 2); incr_ "adds"; incr_ "y" ];
                ];
              incr_ "sp";
            ];
          while_ (v "x" <: v "na")
            [ st "script" (v "sp") (i 1); incr_ "dels"; incr_ "x"; incr_ "sp" ];
          while_ (v "y" <: v "nb")
            [ st "script" (v "sp") (i 2); incr_ "adds"; incr_ "y"; incr_ "sp" ];
          out (v "keeps");
          out (v "dels");
          out (v "adds");
          (* script checksum *)
          leti "checksum" (i 0);
          for_ "k" (i 0) (v "sp")
            [ set "checksum" (band ((v "checksum" *: i 7) +: ld "script" (v "k")) (i 0xFFFFF)) ];
          out (v "checksum");
          ret (v "dels" +: v "adds");
        ];
    ]

(* ---------- dataset generation ---------- *)

type line = { hash : int; floats : float list }

let lines_to_arrays lines =
  let n = List.length lines in
  let hash = Array.make n 0 in
  let nf = Array.make n 0 in
  let fls = Array.make (n * floats_per_line) 0.0 in
  List.iteri
    (fun k l ->
      hash.(k) <- l.hash;
      nf.(k) <- List.length l.floats;
      List.iteri (fun j x -> fls.((k * floats_per_line) + j) <- x) l.floats)
    lines;
  (hash, nf, fls)

let dataset name descr (file_a, file_b) =
  assert (List.length file_a <= max_lines && List.length file_b <= max_lines);
  let ha, nfa, fa = lines_to_arrays file_a in
  let hb, nfb, fb = lines_to_arrays file_b in
  {
    Workload.ds_name = name;
    ds_descr = descr;
    ds_iargs = [];
    ds_fargs = [];
    ds_arrays =
      [
        ("$n_a", `Ints [| Array.length ha |]);
        ("$n_b", `Ints [| Array.length hb |]);
        ("hash_a", `Ints ha);
        ("hash_b", `Ints hb);
        ("nf_a", `Ints nfa);
        ("nf_b", `Ints nfb);
        ("fl_a", `Floats fa);
        ("fl_b", `Floats fb);
      ];
  }

(* two float tables that mostly agree; some rows drift slightly (within
   tolerance), some beyond it, and a few rows are inserted/deleted *)
let float_pair ~seed ~rows ~beyond_pct ~edit_pct =
  let rng = Rng.create seed in
  let base_row r =
    let x = float_of_int r *. 1.618 in
    { hash = 42; floats = [ x; x *. 0.5; x +. 0.25 ] }
  in
  let a = ref [] and b = ref [] in
  for r = 0 to rows - 1 do
    let row = base_row r in
    a := row :: !a;
    if Rng.chance rng edit_pct then begin
      (* structural edit: drop from b, or add an extra row to b *)
      if Rng.bool rng then b := { row with hash = 43 } :: row :: !b
      (* insertion *)
      else () (* deletion: skip row in b *)
    end
    else begin
      let drift =
        if Rng.chance rng beyond_pct then 0.01 +. Rng.float rng 0.2
        else Rng.float rng 0.0004
      in
      b := { row with floats = List.map (fun x -> x +. drift) row.floats } :: !b
    end
  done;
  (List.rev !a, List.rev !b)

(* directory-listing-like files: text lines (no floats), last few differ *)
let listing_pair ~seed ~rows ~tail_changes =
  let rng = Rng.create seed in
  let a = List.init rows (fun r -> { hash = 1000 + (r * 7); floats = [] }) in
  let b =
    List.mapi
      (fun r l ->
        if r >= rows - tail_changes then { l with hash = 5000 + Rng.int rng 100 }
        else l)
      a
  in
  (a, b)

let workload =
  {
    Workload.w_name = "spiff";
    w_paper_name = "spiff";
    w_lang = Workload.C_int;
    w_descr = "file comparison with floating-point tolerance (LCS diff)";
    w_program = program;
    w_seeded_globals = [ "n_a"; "n_b" ];
    w_datasets =
      [
        dataset "case1" "float tables, small in-tolerance drift"
          (float_pair ~seed:1101 ~rows:170 ~beyond_pct:0.03 ~edit_pct:0.02);
        dataset "case2" "float tables, more real differences"
          (float_pair ~seed:1102 ~rows:170 ~beyond_pct:0.2 ~edit_pct:0.08);
        dataset "case3" "directory listings, last lines differ"
          (listing_pair ~seed:1103 ~rows:28 ~tail_changes:4);
      ];
  }
