(* Livermore FORTRAN Kernels analogue: a battery of short numeric loops
   (hydro fragment, ICCG-style reduction, inner product, banded linear
   equations, tri-diagonal elimination, state fragment, ADI-like sweep,
   first difference, ...).  Only the kernel subroutine is measured in the
   paper; here the whole program is the kernels.

   The kernels are individually branch-light but the loops are short, so
   back-edge mispredicts come more often than in matrix300/tomcatv —
   matching LFK's middling 399 instructions/break in Table 3. *)

open Fisher92_minic.Dsl

let vlen = 170

let program =
  program "lfk" ~entry:"main"
    ~globals:[ gint "loops" 75 ]
    ~arrays:
      [
        farr "xv" vlen;
        farr "yv" vlen;
        farr "zv" vlen;
        farr "uv" vlen;
        farr "band5" (vlen * 5);
      ]
    [
      fn "setup" []
        [
          for_ "k" (i 0) (i vlen)
            [
              st "xv" (v "k") (sin_ (to_float (v "k") *: fl 0.011) +: fl 1.5);
              st "yv" (v "k") (cos_ (to_float (v "k") *: fl 0.017) +: fl 1.5);
              st "zv" (v "k") (to_float (v "k" %: i 37) *: fl 0.05);
              st "uv" (v "k") (fl 0.01 *: to_float (v "k" %: i 53));
            ];
          for_ "k" (i 0) (i (vlen * 5))
            [ st "band5" (v "k") (to_float (v "k" %: i 29) *: fl 0.02) ];
        ];
      (* kernel 1: hydro fragment *)
      fn "k1_hydro" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          for_ "k" (i 0) (i (vlen - 12))
            [
              st "xv" (v "k")
                (fl 0.0097
                +: (ld "yv" (v "k")
                   *: (fl 0.421 +: (fl 0.089 *: ld "zv" (v "k" +: i 10)))));
            ];
          ret (ld "xv" (i 7));
        ];
      (* kernel 3: inner product *)
      fn "k3_inner" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          letf "q" (fl 0.0);
          for_ "k" (i 0) (i vlen)
            [ set "q" (v "q" +: (ld "zv" (v "k") *: ld "xv" (v "k"))) ];
          ret (v "q");
        ];
      (* kernel 5: tri-diagonal elimination, below diagonal *)
      fn "k5_tridiag" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          for_ "k" (i 1) (i vlen)
            [
              st "xv" (v "k")
                (ld "zv" (v "k") *: (ld "yv" (v "k") -: ld "xv" (v "k" -: i 1)));
            ];
          ret (ld "xv" (i (vlen - 1)));
        ];
      (* kernel 6: general linear recurrence (short inner loop) *)
      fn "k6_recur" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          for_ "k" (i 1) (i 60)
            [
              letf "acc" (fl 0.0);
              for_ "j" (i 0) (v "k")
                [
                  set "acc"
                    (v "acc" +: (ld "band5" ((v "k" *: i 5) +: (v "j" %: i 5)) *: ld "xv" (v "j")));
                ];
              st "uv" (v "k") (ld "uv" (v "k") +: (v "acc" *: fl 0.001));
            ];
          ret (ld "uv" (i 31));
        ];
      (* kernel 7: equation-of-state fragment (long expression) *)
      fn "k7_state" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          for_ "k" (i 0) (i (vlen - 8))
            [
              st "xv" (v "k")
                (ld "uv" (v "k")
                +: (fl 0.314 *: ld "zv" (v "k"))
                +: (fl 0.271
                   *: (ld "uv" (v "k" +: i 3)
                      +: ld "zv" (v "k" +: i 3)
                      +: ld "uv" (v "k" +: i 6)))
                +: (fl 0.089 *: ld "yv" (v "k" +: i 2)));
            ];
          ret (ld "xv" (i 11));
        ];
      (* kernel 11: first sum (prefix) *)
      fn "k11_prefix" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          st "yv" (i 0) (ld "zv" (i 0));
          for_ "k" (i 1) (i vlen)
            [ st "yv" (v "k") ((ld "yv" (v "k" -: i 1) +: ld "zv" (v "k")) *: fl 0.999) ];
          ret (ld "yv" (i (vlen - 1)));
        ];
      (* kernel 12: first difference *)
      fn "k12_diff" [] ~ret:Fisher92_minic.Ast.Tfloat
        [
          for_ "k" (i 0) (i (vlen - 1))
            [ st "uv" (v "k") (ld "yv" (v "k" +: i 1) -: ld "yv" (v "k")) ];
          ret (ld "uv" (i 3));
        ];
      fn "main" [] ~ret:Fisher92_minic.Ast.Tint
        [
          expr_ (call "setup" []);
          leti "reps" (g "loops");
          letf "sig" (fl 0.0);
          for_ "rep" (i 0) (v "reps")
            [
              set "sig" (v "sig" +: call "k1_hydro" []);
              set "sig" (v "sig" +: call "k3_inner" []);
              set "sig" (v "sig" +: call "k5_tridiag" []);
              set "sig" (v "sig" +: call "k6_recur" []);
              set "sig" (v "sig" +: call "k7_state" []);
              set "sig" (v "sig" +: call "k11_prefix" []);
              set "sig" (v "sig" +: call "k12_diff" []);
            ];
          out (to_int (v "sig" *: fl 100.0));
          ret (i 0);
        ];
    ]

let workload =
  {
    Workload.w_name = "lfk";
    w_paper_name = "LFK";
    w_lang = Workload.Fortran_fp;
    w_descr = "Livermore FORTRAN Kernels loop battery";
    w_program = program;
    w_seeded_globals = [ "loops" ];
    w_datasets =
      [
        {
          ds_name = "self";
          ds_descr = "program generates its own data";
          ds_iargs = [];
          ds_fargs = [];
          ds_arrays = [ ("$loops", `Ints [| 75 |]) ];
        };
      ];
  }
