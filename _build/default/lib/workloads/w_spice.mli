(** 013.spice2g6 analogue: a nodal circuit simulator whose datasets
    exercise different modules (linear DC, Newton device models,
    transient), reproducing the paper's spice unpredictability. *)

val program : Fisher92_minic.Ast.program
val max_nodes : int
val max_elems : int

(** Netlist element constructors for hand-built datasets (see the
    implementation header for the encoding). *)

type elem = { ty : int; a : int; b : int; value : float }

val resistor : int -> int -> float -> elem
val vsource : int -> int -> float -> elem
val isource : int -> int -> float -> elem
val capacitor : int -> int -> float -> elem
val bjt : int -> int -> float -> elem
val fet : int -> int -> float -> elem

val make_dataset :
  string ->
  string ->
  nodes:int ->
  mode:int ->
  ?tsteps:int ->
  ?dt:float ->
  ?sweep_points:int ->
  elem list ->
  Workload.dataset
(** [make_dataset name descr ~nodes ~mode elems]: mode 0 = DC, 1 =
    transient, 2 = DC sweep. *)

val workload : Workload.t
