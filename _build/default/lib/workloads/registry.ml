let build () =
  [
    (* FORTRAN / floating point, paper Table 2 order *)
    W_spice.workload;
    W_doduc.workload;
    W_nasa7.workload;
    W_matrix300.workload;
    W_fpppp.workload;
    W_tomcatv.workload;
    W_lfk.workload;
    (* C / integer *)
    W_cc1.workload;
    W_espresso.workload;
    W_li.workload;
    W_eqntott.workload;
    W_compress.workload;
    W_compress.workload_uncompress;
    W_mfcom.workload;
    W_spiff.workload;
  ]

let memo = lazy (build ())

let all () = Lazy.force memo

let find name =
  List.find (fun w -> String.equal w.Workload.w_name name) (all ())

let fortran_fp () =
  List.filter (fun w -> w.Workload.w_lang = Workload.Fortran_fp) (all ())

let c_integer () =
  List.filter (fun w -> w.Workload.w_lang = Workload.C_int) (all ())

let multi_dataset () =
  List.filter (fun w -> List.length w.Workload.w_datasets >= 2) (all ())

let single_dataset () =
  List.filter (fun w -> List.length w.Workload.w_datasets < 2) (all ())
