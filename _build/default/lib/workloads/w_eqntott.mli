(** 023.eqntott analogue: boolean equations to truth tables with a
    quicksort whose row comparison dominates (the original's [cmppt]). *)

val program : Fisher92_minic.Ast.program

(** RPN token alphabet for signal definitions. *)
type rpn_tok = V of int | S of int | And | Or | Not | Xor

val adder_equations : int -> rpn_tok list list * int * int
(** [adder_equations k] = (signals, n_inputs, n_outputs) for a naive
    ripple-carry k-bit adder: carries, then sum bits, then carry-out. *)

val priority_equations : int -> rpn_tok list list * int * int
(** n-input priority circuit (the SPEC intpri role). *)

val reference_eval : rpn_tok list list * int * int -> int -> int array
(** Evaluate every signal for one input assignment (test oracle). *)

val reference_distinct_rows : rpn_tok list list * int * int -> int
(** Number of distinct output rows over all assignments (test oracle). *)

val workload : Workload.t
