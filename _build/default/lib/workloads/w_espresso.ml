(* 008.espresso analogue: two-level logic (PLA) minimization.

   The core of espresso's EXPAND/IRREDUNDANT loop: each ON-set cube is
   expanded literal by literal as long as the raised cube stays disjoint
   from the OFF-set, then cubes covered by other cubes are dropped.  The
   dominant work is cube intersection testing with data-dependent early
   exits — the branch behaviour that makes espresso one of the paper's
   less predictable programs (and, per Table 1, 18% dead code: espresso
   keeps per-cube diagnostic counts nothing consumes).

   Cube encoding, one int per variable: 1 = literal 0, 2 = literal 1,
   3 = don't care.  Two cubes intersect iff (a AND b) != 0 at every
   variable.  Cube b covers a iff (a AND b) == a everywhere.

   Datasets bca/cps/ti/tial follow the SPEC reference inputs' roles:
   different sizes and ON/OFF densities. *)

open Fisher92_minic.Dsl
module Rng = Fisher92_util.Rng

let max_vars = 14
let max_cubes = 160
let max_off = 700

let program =
  program "espresso" ~entry:"main"
    ~globals:[ gint "n_vars" 0; gint "n_on" 0; gint "n_off" 0 ]
    ~arrays:
      [
        iarr "oncube" (max_cubes * max_vars);
        iarr "offcube" (max_off * max_vars);
        iarr "alive" max_cubes;
        iarr "raise_count" max_cubes;  (* dead: diagnostic nothing reads *)
      ]
    [
      (* does ON cube c (with variable vidx raised to 3) hit the OFF set? *)
      fn "hits_offset" [ pi "c" ] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "nv" (g "n_vars");
          leti "noff" (g "n_off");
          leti "dead_probes" (i 0);
          leti "dead_span" (i 0);
          leti "dead_sig" (i 0);
          for_ "o" (i 0) (v "noff")
            [
              leti "disjoint" (i 0);
              leti "vv" (i 0);
              while_ ((v "disjoint" =: i 0) &&: (v "vv" <: v "nv"))
                [
                  when_
                    (band
                       (ld "oncube" ((v "c" *: i max_vars) +: v "vv"))
                       (ld "offcube" ((v "o" *: i max_vars) +: v "vv"))
                    =: i 0)
                    [ set "disjoint" (i 1) ];
                  (* dead: probe diagnostics nothing reads (Table 1:
                     espresso 18%) *)
                  set "dead_probes" (v "dead_probes" +: v "vv");
                  set "dead_span" (imax (v "dead_span") (v "o"));
                  set "dead_sig" (bxor (v "dead_sig") (v "vv"));
                  incr_ "vv";
                ];
              when_ (v "disjoint" =: i 0) [ ret (i 1) ];
            ];
          ret (i 0);
        ];
      (* expand: raise each literal of each cube while legal *)
      fn "expand" []
        [
          leti "non" (g "n_on");
          leti "nv" (g "n_vars");
          for_ "c" (i 0) (v "non")
            [
              for_ "vv" (i 0) (v "nv")
                [
                  leti "code" (ld "oncube" ((v "c" *: i max_vars) +: v "vv"));
                  when_ (v "code" <>: i 3)
                    [
                      st "oncube" ((v "c" *: i max_vars) +: v "vv") (i 3);
                      if_ (call "hits_offset" [ v "c" ] =: i 1)
                        [ st "oncube" ((v "c" *: i max_vars) +: v "vv") (v "code") ]
                        [
                          st "raise_count" (v "c")
                            (ld "raise_count" (v "c") +: i 1);
                        ];
                    ];
                ];
            ];
        ];
      (* does cube b cover cube a? *)
      fn "covers" [ pi "b"; pi "a" ] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "nv" (g "n_vars");
          for_ "vv" (i 0) (v "nv")
            [
              leti "ca" (ld "oncube" ((v "a" *: i max_vars) +: v "vv"));
              when_
                (band (v "ca") (ld "oncube" ((v "b" *: i max_vars) +: v "vv"))
                <>: v "ca")
                [ ret (i 0) ];
            ];
          ret (i 1);
        ];
      (* irredundant-ish: drop cubes covered by another live cube *)
      fn "reduce_cover" [] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "non" (g "n_on");
          leti "left" (i 0);
          for_ "c" (i 0) (v "non") [ st "alive" (v "c") (i 1) ];
          for_ "c" (i 0) (v "non")
            [
              leti "covered" (i 0);
              leti "d" (i 0);
              while_ ((v "covered" =: i 0) &&: (v "d" <: v "non"))
                [
                  when_
                    ((v "d" <>: v "c")
                    &&: (ld "alive" (v "d") =: i 1)
                    &&: (call "covers" [ v "d"; v "c" ] =: i 1))
                    [ set "covered" (i 1) ];
                  incr_ "d";
                ];
              when_ (v "covered" =: i 1) [ st "alive" (v "c") (i 0) ];
            ];
          for_ "c" (i 0) (v "non")
            [ when_ (ld "alive" (v "c") =: i 1) [ incr_ "left" ] ];
          ret (v "left");
        ];
      fn "main" [] ~ret:Fisher92_minic.Ast.Tint
        [
          expr_ (call "expand" []);
          leti "left" (call "reduce_cover" []);
          (* checksum the surviving cover *)
          leti "checksum" (i 0);
          leti "non" (g "n_on");
          leti "nv" (g "n_vars");
          for_ "c" (i 0) (v "non")
            [
              when_ (ld "alive" (v "c") =: i 1)
                [
                  for_ "vv" (i 0) (v "nv")
                    [
                      set "checksum"
                        (band
                           ((v "checksum" *: i 37)
                           +: ld "oncube" ((v "c" *: i max_vars) +: v "vv"))
                           (i 0xFFFFFF));
                    ];
                ];
            ];
          out (v "left");
          out (v "checksum");
          ret (v "left");
        ];
    ]

(* ---------- dataset generation ---------- *)

(* A hidden random function partitions minterm space: a minterm is ON iff
   it matches any of the secret generator cubes.  ON cubes are sampled
   from the generators (specialized); OFF minterms are sampled from the
   complement — so ON and OFF are consistent by construction. *)
type pla = {
  n_vars : int;
  on : int array array;  (* cubes, codes 1/2/3 *)
  off : int array array;  (* full minterms, codes 1/2 *)
}

let minterm_matches cube m =
  let ok = ref true in
  Array.iteri
    (fun k code ->
      let bitcode = if (m lsr k) land 1 = 1 then 2 else 1 in
      if code land bitcode = 0 then ok := false)
    cube;
  !ok

let generate_pla ~seed ~n_vars ~n_generators ~n_on ~n_off =
  let rng = Rng.create seed in
  let generators =
    Array.init n_generators (fun _ ->
        Array.init n_vars (fun _ ->
            match Rng.int rng 4 with 0 -> 1 | 1 -> 2 | _ -> 3))
  in
  let is_on m = Array.exists (fun gen -> minterm_matches gen m) generators in
  (* ON cubes: specialize a generator by pinning some don't-cares *)
  let on =
    Array.init n_on (fun _ ->
        let gen = Rng.pick rng generators in
        Array.map
          (fun code ->
            if code = 3 && Rng.chance rng 0.55 then 1 + Rng.int rng 2 else code)
          gen)
  in
  (* OFF minterms: rejection-sample the complement *)
  let off = ref [] in
  let found = ref 0 in
  let attempts = ref 0 in
  while !found < n_off && !attempts < n_off * 200 do
    incr attempts;
    let m = Rng.int rng (1 lsl n_vars) in
    if not (is_on m) then begin
      incr found;
      off :=
        Array.init n_vars (fun k -> if (m lsr k) land 1 = 1 then 2 else 1)
        :: !off
    end
  done;
  { n_vars; on; off = Array.of_list !off }

let dataset name descr pla =
  let n_on = Array.length pla.on and n_off = Array.length pla.off in
  assert (pla.n_vars <= max_vars && n_on <= max_cubes && n_off <= max_off);
  let flatten cubes width =
    let a = Array.make (Array.length cubes * width) 3 in
    Array.iteri
      (fun c cube -> Array.iteri (fun k code -> a.((c * width) + k) <- code) cube)
      cubes;
    a
  in
  {
    Workload.ds_name = name;
    ds_descr = descr;
    ds_iargs = [];
    ds_fargs = [];
    ds_arrays =
      [
        ("$n_vars", `Ints [| pla.n_vars |]);
        ("$n_on", `Ints [| n_on |]);
        ("$n_off", `Ints [| n_off |]);
        ("oncube", `Ints (flatten pla.on max_vars));
        ("offcube", `Ints (flatten pla.off max_vars));
      ];
  }

let plas =
  lazy
    [
      ( "bca",
        "dense control PLA",
        generate_pla ~seed:811 ~n_vars:12 ~n_generators:9 ~n_on:90 ~n_off:260 );
      ( "cps",
        "sparse wide PLA",
        generate_pla ~seed:812 ~n_vars:14 ~n_generators:5 ~n_on:70 ~n_off:300 );
      ( "ti",
        "medium PLA",
        generate_pla ~seed:813 ~n_vars:12 ~n_generators:12 ~n_on:100 ~n_off:240 );
      ( "tial",
        "large dense PLA",
        generate_pla ~seed:814 ~n_vars:13 ~n_generators:14 ~n_on:120 ~n_off:330 );
    ]

let workload =
  {
    Workload.w_name = "espresso";
    w_paper_name = "008.espresso";
    w_lang = Workload.C_int;
    w_descr = "PLA (two-level logic) minimizer";
    w_program = program;
    w_seeded_globals = [ "n_vars"; "n_on"; "n_off" ];
    w_datasets = List.map (fun (n, d, p) -> dataset n d p) (Lazy.force plas);
  }
