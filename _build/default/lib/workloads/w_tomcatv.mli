(** 047.tomcatv analogue: mesh generation with thin-plate relaxation. *)

val program : Fisher92_minic.Ast.program
val workload : Workload.t
