(* 047.tomcatv analogue: vectorized mesh generation with thin-plate
   relaxation.

   Like the original, the program builds a 2D mesh, then repeatedly
   sweeps it computing residuals from neighbour stencils and relaxing the
   coordinates.  The per-point arithmetic is heavy (the original runs
   ~60 flops per point), so the loop back edges dominate and the program
   is the most predictable in Table 3 (7461 instructions per break).
   Table 1 charges tomcatv with 14% dynamic dead code; we synthesize it
   with an error-field store that nothing reads. *)

open Fisher92_minic.Dsl

let n_max = 64

let program =
  program "tomcatv" ~entry:"main"
    ~globals:[ gint "n" 48; gint "iters" 60; gfloat "relax" 0.3 ]
    ~arrays:
      [
        farr "x" (n_max * n_max);
        farr "y" (n_max * n_max);
        farr "rx" (n_max * n_max);
        farr "ry" (n_max * n_max);
        farr "deadfield" (n_max * n_max);
      ]
    [
      fn "init" []
        [
          leti "nn" (g "n");
          for_ "r" (i 0) (v "nn")
            [
              for_ "c" (i 0) (v "nn")
                [
                  leti "idx" ((v "r" *: v "nn") +: v "c");
                  st "x" (v "idx")
                    (to_float (v "c")
                    +: (sin_ (to_float (v "r") *: fl 0.21) *: fl 0.7));
                  st "y" (v "idx")
                    (to_float (v "r")
                    +: (cos_ (to_float (v "c") *: fl 0.17) *: fl 0.7));
                ];
            ];
        ];
      fn "main" [] ~ret:Fisher92_minic.Ast.Tint
        [
          expr_ (call "init" []);
          leti "nn" (g "n");
          leti "steps" (g "iters");
          letf "w" (g "relax");
          letf "rmax" (fl 0.0);
          letf "deadnorm" (fl 0.0);
          letf "deadavg" (fl 0.0);
          leti "deadcnt" (i 0);
          for_ "it" (i 0) (v "steps")
            [
              set "rmax" (fl 0.0);
              (* residual sweep over interior points *)
              for_ "r" (i 1) (v "nn" -: i 1)
                [
                  for_ "c" (i 1) (v "nn" -: i 1)
                    [
                      leti "idx" ((v "r" *: v "nn") +: v "c");
                      letf "xe" (ld "x" (v "idx" +: i 1));
                      letf "xw" (ld "x" (v "idx" -: i 1));
                      letf "xn" (ld "x" (v "idx" -: v "nn"));
                      letf "xs" (ld "x" (v "idx" +: v "nn"));
                      letf "ye" (ld "y" (v "idx" +: i 1));
                      letf "yw" (ld "y" (v "idx" -: i 1));
                      letf "yn" (ld "y" (v "idx" -: v "nn"));
                      letf "ys" (ld "y" (v "idx" +: v "nn"));
                      letf "xc" (ld "x" (v "idx"));
                      letf "yc" (ld "y" (v "idx"));
                      (* thin-plate-ish stencil: second differences plus
                         cross terms, like the original's PXX/PYY/PXY mix *)
                      letf "dxx" (v "xe" +: v "xw" -: (v "xc" *: fl 2.0));
                      letf "dyy" (v "xn" +: v "xs" -: (v "xc" *: fl 2.0));
                      letf "exx" (v "ye" +: v "yw" -: (v "yc" *: fl 2.0));
                      letf "eyy" (v "yn" +: v "ys" -: (v "yc" *: fl 2.0));
                      letf "cross"
                        ((v "xe" -: v "xw") *: (v "yn" -: v "ys") *: fl 0.25);
                      letf "resx"
                        ((v "dxx" *: fl 0.6) +: (v "dyy" *: fl 0.4)
                        +: (v "cross" *: fl 0.05));
                      letf "resy"
                        ((v "exx" *: fl 0.4) +: (v "eyy" *: fl 0.6)
                        -: (v "cross" *: fl 0.05));
                      st "rx" (v "idx") (v "resx");
                      st "ry" (v "idx") (v "resy");
                      letf "mag" (abs_ (v "resx") +: abs_ (v "resy"));
                      set "rmax" (imax (v "rmax") (v "mag"));
                      (* dead: an error field and norm accumulators
                         nothing consumes (Table 1: tomcatv 14%) *)
                      st "deadfield" (v "idx")
                        ((v "resx" *: v "resx") +: (v "resy" *: v "resy"));
                      set "deadnorm"
                        (v "deadnorm" +: (v "resx" *: v "resx")
                        +: (v "resy" *: v "resy"));
                      set "deadavg"
                        ((v "deadavg" *: fl 0.99) +: (v "mag" *: fl 0.01));
                      set "deadcnt" (v "deadcnt" +: i 1);
                    ];
                ];
              (* relaxation sweep *)
              for_ "r" (i 1) (v "nn" -: i 1)
                [
                  for_ "c" (i 1) (v "nn" -: i 1)
                    [
                      leti "p" ((v "r" *: v "nn") +: v "c");
                      st "x" (v "p") (ld "x" (v "p") +: (v "w" *: ld "rx" (v "p")));
                      st "y" (v "p") (ld "y" (v "p") +: (v "w" *: ld "ry" (v "p")));
                    ];
                ];
            ];
          out (to_int (v "rmax" *: fl 1000000.0));
          letf "sumx" (fl 0.0);
          for_ "d" (i 0) (v "nn")
            [ set "sumx" (v "sumx" +: ld "x" ((v "d" *: v "nn") +: v "d")) ];
          out (to_int (v "sumx" *: fl 1000.0));
          ret (i 0);
        ];
    ]

let workload =
  {
    Workload.w_name = "tomcatv";
    w_paper_name = "047.tomcatv";
    w_lang = Workload.Fortran_fp;
    w_descr = "mesh generation with thin-plate relaxation solver";
    w_program = program;
    w_seeded_globals = [ "n"; "iters" ];
    w_datasets =
      [
        {
          ds_name = "self";
          ds_descr = "program generates its own mesh (48x48, 60 sweeps)";
          ds_iargs = [];
          ds_fargs = [];
          ds_arrays = [ ("$n", `Ints [| 48 |]); ("$iters", `Ints [| 60 |]) ];
        };
      ];
  }
