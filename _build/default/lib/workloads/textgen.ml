module Rng = Fisher92_util.Rng

let to_bytes s = Array.init (String.length s) (fun k -> Char.code s.[k])

let c_idents =
  [| "count"; "buf"; "ptr"; "len"; "idx"; "tmp"; "result"; "node"; "next";
     "head"; "size"; "flag"; "state"; "value"; "left"; "right"; "key" |]

let c_types = [| "int"; "char"; "long"; "unsigned"; "short" |]

let c_source ~seed ~lines =
  let rng = Rng.create seed in
  let buf = Buffer.create (lines * 32) in
  let ident () = Rng.pick rng c_idents in
  let rec statement depth =
    let pad = String.make (2 * depth) ' ' in
    match Rng.int rng 10 with
    | 0 ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s = %d;\n" pad (Rng.pick rng c_types) (ident ())
           (Rng.int rng 1000))
    | 1 | 2 | 3 ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s = %s %s %s;\n" pad (ident ()) (ident ())
           (Rng.pick rng [| "+"; "-"; "*"; "&"; "|"; "^"; ">>"; "<<" |])
           (ident ()))
    | 4 when depth < 3 ->
      Buffer.add_string buf
        (Printf.sprintf "%sif (%s %s %s) {\n" pad (ident ())
           (Rng.pick rng [| "<"; ">"; "=="; "!=" |])
           (ident ()));
      statement (depth + 1);
      Buffer.add_string buf (Printf.sprintf "%s}\n" pad)
    | 5 when depth < 3 ->
      Buffer.add_string buf
        (Printf.sprintf "%sfor (%s = 0; %s < %d; %s++) {\n" pad (ident ())
           (ident ()) (Rng.int rng 100) (ident ()));
      statement (depth + 1);
      Buffer.add_string buf (Printf.sprintf "%s}\n" pad)
    | 6 ->
      Buffer.add_string buf
        (Printf.sprintf "%sreturn %s;\n" pad (ident ()))
    | 7 ->
      Buffer.add_string buf
        (Printf.sprintf "%s/* %s %s */\n" pad (ident ()) (ident ()))
    | _ ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s(%s, %s);\n" pad (ident ()) (ident ()) (ident ()))
  in
  let line_count () =
    (* approximate: each statement adds 1-3 lines *)
    Buffer.length buf / 24
  in
  while line_count () < lines do
    if Rng.int rng 12 = 0 then
      Buffer.add_string buf
        (Printf.sprintf "static %s %s(%s %s) {\n" (Rng.pick rng c_types)
           (ident ()) (Rng.pick rng c_types) (ident ()));
    statement 1;
    if Rng.int rng 10 = 0 then Buffer.add_string buf "}\n"
  done;
  to_bytes (Buffer.contents buf)

let f_vars = [| "I"; "J"; "K"; "N"; "X"; "Y"; "Z"; "A"; "B"; "TOT"; "SUM" |]

let fortran_source ~seed ~lines =
  let rng = Rng.create seed in
  let buf = Buffer.create (lines * 32) in
  let var () = Rng.pick rng f_vars in
  for _ = 1 to lines do
    match Rng.int rng 8 with
    | 0 ->
      Buffer.add_string buf
        (Printf.sprintf "      DO %d %s = 1, %d\n" (10 * (1 + Rng.int rng 90))
           (var ()) (Rng.int rng 500))
    | 1 ->
      Buffer.add_string buf
        (Printf.sprintf "%d    CONTINUE\n" (10 * (1 + Rng.int rng 90)))
    | 2 | 3 | 4 ->
      Buffer.add_string buf
        (Printf.sprintf "      %s = %s %s %s\n" (var ()) (var ())
           (Rng.pick rng [| "+"; "-"; "*"; "/" |])
           (var ()))
    | 5 ->
      Buffer.add_string buf
        (Printf.sprintf "      IF (%s .GT. %s) GOTO %d\n" (var ()) (var ())
           (10 * (1 + Rng.int rng 90)))
    | 6 ->
      Buffer.add_string buf
        (Printf.sprintf "C     %s OF %s\n" (var ()) (var ()))
    | _ ->
      Buffer.add_string buf
        (Printf.sprintf "      CALL SUB%d(%s, %s)\n" (Rng.int rng 20) (var ())
           (var ()))
  done;
  to_bytes (Buffer.contents buf)

let word_pool =
  [| "the"; "of"; "and"; "a"; "to"; "in"; "is"; "that"; "it"; "was"; "for";
     "on"; "are"; "with"; "as"; "his"; "they"; "be"; "at"; "one"; "have";
     "this"; "from"; "or"; "had"; "by"; "word"; "but"; "what"; "some"; "we";
     "can"; "out"; "other"; "were"; "all"; "there"; "when"; "up"; "use";
     "your"; "how"; "said"; "an"; "each"; "she"; "which"; "do"; "their";
     "time"; "if"; "will"; "way"; "about"; "many"; "then"; "them"; "write";
     "would"; "like"; "so"; "these"; "her"; "long" |]

let english ~seed ~words =
  let rng = Rng.create seed in
  let buf = Buffer.create (words * 6) in
  let col = ref 0 in
  for _ = 1 to words do
    (* Zipf-ish: low indices much more likely *)
    let r = Rng.int rng (Array.length word_pool) in
    let r2 = Rng.int rng (r + 1) in
    let w = word_pool.(r2) in
    Buffer.add_string buf w;
    col := !col + String.length w + 1;
    if !col > 68 then begin
      Buffer.add_char buf '\n';
      col := 0
    end
    else Buffer.add_char buf ' '
  done;
  to_bytes (Buffer.contents buf)

let binary_image ~seed ~size =
  let rng = Rng.create seed in
  Array.init size (fun k ->
      if k < 64 then (* header *)
        if k mod 4 = 0 then 0x7f else k mod 256
      else if k mod 512 < 128 then
        (* low-entropy table section: small values, runs *)
        Rng.int rng 4 * 16
      else
        (* code-ish: opcode byte patterns with repeats *)
        match Rng.int rng 8 with
        | 0 | 1 | 2 -> 0x48 + Rng.int rng 8
        | 3 | 4 -> Rng.int rng 32
        | 5 -> 0x90
        | _ -> Rng.int rng 256)

let random_bytes ~seed ~size =
  let rng = Rng.create seed in
  Array.init size (fun _ -> Rng.int rng 256)

let float_table ~seed ~rows ~jitter =
  let rng = Rng.create seed in
  let buf = Buffer.create (rows * 32) in
  for r = 1 to rows do
    let base = float_of_int r *. 1.75 in
    let x = base +. (jitter *. Rng.float rng 1.0) in
    let y = (base *. 0.5) -. (jitter *. Rng.float rng 1.0) in
    Buffer.add_string buf (Printf.sprintf "%.4f %.4f %.4f\n" x y (x +. y))
  done;
  Buffer.contents buf
