(* 022.li analogue: an interpreter interpreting its input.

   XLISP's behaviour in the paper — "constantly looking at lisp
   instructions and deciding what to do", a conditional branch every ~10
   instructions — is the behaviour of any dispatch-loop interpreter.  We
   implement a stack-machine interpreter in MiniC (a dispatch switch over
   ~30 opcodes, int and float evaluation stacks, a call stack, static
   global cells, and dynamically indexed int/float data regions), and the
   datasets are *programs* for that machine, mirroring the paper's:

   - 8queens / 9queens: backtracking chessboard search (SPEC's input);
   - kitty: a numeric mesh relaxation — the paper's tomcatv-in-xlisp;
   - sieve: a prime sieve, "output of a machine language to lisp
     simulator computing primes".

   Each dataset emphasizes different opcode handlers (queens: compare/
   branch/int-data; kitty: float ops; sieve: int-data marking), exactly
   the mechanism the paper credits for interpreter unpredictability.
   The dispatch cascade is ordered by typical opcode frequency, as a
   compiler with IFPROB feedback would order it. *)

open Fisher92_minic.Dsl

let code_max = 4096
let stack_max = 256
let gvars_max = 64
let idata_max = 4096
let fdata_max = 2048

(* Opcodes, ordered roughly by dynamic frequency (the dispatch cascade
   tests them in this order). *)
let op_loadg = 0
let op_pushi = 1
let op_ilda = 2
let op_lt = 3
let op_add = 4
let op_jz = 5
let op_jnz = 6
let op_storeg = 7
let op_eq = 8
let op_sub = 9
let op_jmp = 10
let op_ista = 11
let op_dup = 12
let op_neg = 13
let op_mul = 14
let op_div = 15
let op_mod = 16
let op_le = 17
let op_ne = 18
let op_call = 19
let op_ret = 20
let op_out = 21
let op_drop = 22
let op_flda = 23
let op_fsta = 24
let op_fadd = 25
let op_fsub = 26
let op_fmul = 27
let op_fout = 28
let op_itof = 29
let op_halt = 30

let binop_int op_expr =
  [
    set "sp" (v "sp" -: i 1);
    st "istack" (v "sp" -: i 1)
      (op_expr (ld "istack" (v "sp" -: i 1)) (ld "istack" (v "sp")));
  ]

let binop_float op_expr =
  [
    set "fsp" (v "fsp" -: i 1);
    st "fstack" (v "fsp" -: i 1)
      (op_expr (ld "fstack" (v "fsp" -: i 1)) (ld "fstack" (v "fsp")));
  ]

let program =
  program "li" ~entry:"main"
    ~globals:[ gint "code_len" 0 ]
    ~arrays:
      [
        iarr "code" code_max;
        iarr "istack" stack_max;
        farr "fstack" stack_max;
        iarr "rstack" stack_max;
        iarr "gvars" gvars_max;
        iarr "idata" idata_max;
        farr "fdata" fdata_max;
      ]
    [
      fn "main" [] ~ret:Fisher92_minic.Ast.Tint
        [
          leti "pc" (i 0);
          leti "sp" (i 0);
          leti "fsp" (i 0);
          leti "rsp" (i 0);
          leti "running" (i 1);
          leti "executed" (i 0);
          while_ (v "running" =: i 1)
            [
              leti "op" (ld "code" (v "pc"));
              leti "arg" (ld "code" (v "pc" +: i 1));
              set "pc" (v "pc" +: i 2);
              set "executed" (v "executed" +: i 1);
              switch_ (v "op")
                [
                  case op_loadg
                    [ st "istack" (v "sp") (ld "gvars" (v "arg")); incr_ "sp" ];
                  case op_pushi [ st "istack" (v "sp") (v "arg"); incr_ "sp" ];
                  case op_ilda
                    [
                      st "istack" (v "sp" -: i 1)
                        (ld "idata" (ld "istack" (v "sp" -: i 1)));
                    ];
                  case op_lt (binop_int (fun a b -> a <: b));
                  case op_add (binop_int (fun a b -> a +: b));
                  case op_jz
                    [
                      set "sp" (v "sp" -: i 1);
                      when_ (ld "istack" (v "sp") =: i 0) [ set "pc" (v "arg") ];
                    ];
                  case op_jnz
                    [
                      set "sp" (v "sp" -: i 1);
                      when_ (ld "istack" (v "sp") <>: i 0) [ set "pc" (v "arg") ];
                    ];
                  case op_storeg
                    [
                      set "sp" (v "sp" -: i 1);
                      st "gvars" (v "arg") (ld "istack" (v "sp"));
                    ];
                  case op_eq (binop_int (fun a b -> a =: b));
                  case op_sub (binop_int (fun a b -> a -: b));
                  case op_jmp [ set "pc" (v "arg") ];
                  case op_ista
                    [
                      (* value pushed first, index on top *)
                      set "sp" (v "sp" -: i 2);
                      st "idata" (ld "istack" (v "sp" +: i 1)) (ld "istack" (v "sp"));
                    ];
                  case op_dup
                    [
                      st "istack" (v "sp") (ld "istack" (v "sp" -: i 1));
                      incr_ "sp";
                    ];
                  case op_neg
                    [ st "istack" (v "sp" -: i 1) (neg (ld "istack" (v "sp" -: i 1))) ];
                  case op_mul (binop_int (fun a b -> a *: b));
                  case op_div (binop_int (fun a b -> a /: b));
                  case op_mod (binop_int (fun a b -> a %: b));
                  case op_le (binop_int (fun a b -> a <=: b));
                  case op_ne (binop_int (fun a b -> a <>: b));
                  case op_call
                    [
                      st "rstack" (v "rsp") (v "pc");
                      incr_ "rsp";
                      set "pc" (v "arg");
                    ];
                  case op_ret
                    [
                      set "rsp" (v "rsp" -: i 1);
                      set "pc" (ld "rstack" (v "rsp"));
                    ];
                  case op_out
                    [ set "sp" (v "sp" -: i 1); out (ld "istack" (v "sp")) ];
                  case op_drop [ set "sp" (v "sp" -: i 1) ];
                  case op_flda
                    [
                      set "sp" (v "sp" -: i 1);
                      st "fstack" (v "fsp") (ld "fdata" (ld "istack" (v "sp")));
                      incr_ "fsp";
                    ];
                  case op_fsta
                    [
                      set "sp" (v "sp" -: i 1);
                      set "fsp" (v "fsp" -: i 1);
                      st "fdata" (ld "istack" (v "sp")) (ld "fstack" (v "fsp"));
                    ];
                  case op_fadd (binop_float (fun a b -> a +: b));
                  case op_fsub (binop_float (fun a b -> a -: b));
                  case op_fmul (binop_float (fun a b -> a *: b));
                  case op_fout
                    [
                      set "fsp" (v "fsp" -: i 1);
                      out (to_int (ld "fstack" (v "fsp") *: fl 1000000.0));
                    ];
                  case op_itof
                    [
                      set "sp" (v "sp" -: i 1);
                      st "fstack" (v "fsp") (to_float (ld "istack" (v "sp")));
                      incr_ "fsp";
                    ];
                  case op_halt [ set "running" (i 0) ];
                ]
                [ set "running" (i 0) ];
            ];
          out (v "executed");
          ret (i 0);
        ];
    ]

(* ---------- assembler ---------- *)

type asm = Op of int * int | Opl of int * string | Lbl of string

let assemble items =
  let labels = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (function
      | Lbl name -> Hashtbl.replace labels name !pc
      | Op _ | Opl _ -> pc := !pc + 2)
    items;
  let code = Array.make !pc 0 in
  let at = ref 0 in
  List.iter
    (function
      | Lbl _ -> ()
      | Op (op, arg) ->
        code.(!at) <- op;
        code.(!at + 1) <- arg;
        at := !at + 2
      | Opl (op, label) ->
        code.(!at) <- op;
        (code.(!at + 1) <-
          (match Hashtbl.find_opt labels label with
          | Some target -> target
          | None -> invalid_arg ("W_li.assemble: unknown label " ^ label)));
        at := !at + 2)
    items;
  code

let pushi k = Op (op_pushi, k)
let loadg a = Op (op_loadg, a)
let storeg a = Op (op_storeg, a)
let jmp l = Opl (op_jmp, l)
let jz l = Opl (op_jz, l)
let jnz l = Opl (op_jnz, l)
let simple op = Op (op, 0)

(* ---------- dataset programs ---------- *)

(* N-queens, iterative backtracking; board in idata[row].
   gvars: 0=N 1=row 2=count 3=c 4=j 5=pj 7=ok *)
let queens n =
  [
    pushi n; storeg 0;
    pushi 0; storeg 2;
    pushi 0; storeg 1;
    pushi (-1); pushi 0; simple op_ista;
    Lbl "step";
    loadg 1; pushi 0; simple op_lt; jnz "done";
    loadg 1; simple op_ilda; pushi 1; simple op_add; storeg 3;
    Lbl "scan";
    loadg 3; loadg 0; simple op_lt; jz "exhausted";
    pushi 0; storeg 4;
    pushi 1; storeg 7;
    Lbl "conf_loop";
    loadg 4; loadg 1; simple op_lt; jz "conf_done";
    loadg 4; simple op_ilda; storeg 5;
    loadg 5; loadg 3; simple op_eq; jnz "conflict";
    loadg 5; loadg 3; simple op_sub;
    simple op_dup; pushi 0; simple op_lt; jz "abs_done";
    simple op_neg;
    Lbl "abs_done";
    loadg 1; loadg 4; simple op_sub;
    simple op_eq; jnz "conflict";
    loadg 4; pushi 1; simple op_add; storeg 4;
    jmp "conf_loop";
    Lbl "conflict";
    pushi 0; storeg 7;
    Lbl "conf_done";
    loadg 7; jnz "placed";
    loadg 3; pushi 1; simple op_add; storeg 3;
    jmp "scan";
    Lbl "placed";
    loadg 3; loadg 1; simple op_ista;
    loadg 1; loadg 0; pushi 1; simple op_sub; simple op_eq; jz "descend";
    loadg 2; pushi 1; simple op_add; storeg 2;
    loadg 3; pushi 1; simple op_add; storeg 3;
    jmp "scan";
    Lbl "descend";
    loadg 1; pushi 1; simple op_add; storeg 1;
    pushi (-1); loadg 1; simple op_ista;
    jmp "step";
    Lbl "exhausted";
    loadg 1; pushi 1; simple op_sub; storeg 1;
    jmp "step";
    Lbl "done";
    loadg 2; simple op_out;
    simple op_halt;
  ]

(* prime sieve over idata; outputs the prime count.
   gvars: 0=i 1=j 2=count *)
let sieve limit =
  [
    pushi 2; storeg 0;
    Lbl "init";
    loadg 0; pushi limit; simple op_lt; jz "init_done";
    pushi 1; loadg 0; simple op_ista;
    loadg 0; pushi 1; simple op_add; storeg 0;
    jmp "init";
    Lbl "init_done";
    pushi 0; storeg 2;
    pushi 2; storeg 0;
    Lbl "outer";
    loadg 0; pushi limit; simple op_lt; jz "finish";
    loadg 0; simple op_ilda; jz "next_i";
    loadg 2; pushi 1; simple op_add; storeg 2;
    loadg 0; loadg 0; simple op_add; storeg 1;
    Lbl "mark";
    loadg 1; pushi limit; simple op_lt; jz "next_i";
    pushi 0; loadg 1; simple op_ista;
    loadg 1; loadg 0; simple op_add; storeg 1;
    jmp "mark";
    Lbl "next_i";
    loadg 0; pushi 1; simple op_add; storeg 0;
    jmp "outer";
    Lbl "finish";
    loadg 2; simple op_out;
    simple op_halt;
  ]

(* kitty: 1D heat relaxation over fdata[base..base+m), like tomcatv
   rewritten for the interpreter.  fdata[0] holds the 0.5 constant and is
   seeded by the dataset along with the initial mesh.
   gvars: 0=k 1=it *)
let kitty_base = 16

let kitty ~m ~iters =
  [
    pushi 0; storeg 1;
    Lbl "sweep";
    loadg 1; pushi iters; simple op_lt; jz "done";
    pushi 1; storeg 0;
    Lbl "point";
    loadg 0; pushi (m - 1); simple op_lt; jz "sweep_end";
    (* fdata[base+k] = (fdata[base+k-1] + fdata[base+k+1]) * 0.5 *)
    loadg 0; pushi (kitty_base - 1); simple op_add; simple op_flda;
    loadg 0; pushi (kitty_base + 1); simple op_add; simple op_flda;
    simple op_fadd;
    pushi 0; simple op_flda;
    simple op_fmul;
    loadg 0; pushi kitty_base; simple op_add; simple op_fsta;
    loadg 0; pushi 1; simple op_add; storeg 0;
    jmp "point";
    Lbl "sweep_end";
    loadg 1; pushi 1; simple op_add; storeg 1;
    jmp "sweep";
    Lbl "done";
    pushi (kitty_base + (m / 2)); simple op_flda; simple op_fout;
    simple op_halt;
  ]

(* ---------- reference results (for tests) ---------- *)

let reference_queens_count n =
  let pos = Array.make n (-1) in
  let conflicts row c =
    let rec go j =
      j < row
      && (pos.(j) = c || abs (pos.(j) - c) = row - j || go (j + 1))
    in
    (* force full scan semantics equal to bytecode (short-circuit ok) *)
    go 0
  in
  let count = ref 0 in
  let rec place row =
    if row = n then incr count
    else
      for c = 0 to n - 1 do
        if not (conflicts row c) then begin
          pos.(row) <- c;
          place (row + 1);
          pos.(row) <- -1
        end
      done
  in
  place 0;
  !count

let reference_sieve_count limit =
  let flags = Array.make (max limit 3) true in
  let count = ref 0 in
  for k = 2 to limit - 1 do
    if flags.(k) then begin
      incr count;
      let j = ref (k + k) in
      while !j < limit do
        flags.(!j) <- false;
        j := !j + k
      done
    end
  done;
  !count

(* ---------- datasets ---------- *)

let bytecode_dataset name descr ?(fdata = [||]) code =
  assert (Array.length code <= code_max);
  {
    Workload.ds_name = name;
    ds_descr = descr;
    ds_iargs = [];
    ds_fargs = [];
    ds_arrays =
      (("$code_len", `Ints [| Array.length code |])
       :: ("code", `Ints code)
       ::
       (if Array.length fdata = 0 then [] else [ ("fdata", `Floats fdata) ]));
  }

let kitty_m = 220
let kitty_iters = 28

let kitty_fdata =
  let a = Array.make (kitty_base + kitty_m + 1) 0.0 in
  a.(0) <- 0.5;
  for k = 0 to kitty_m do
    a.(kitty_base + k) <- sin (float_of_int k *. 0.11) +. 1.0
  done;
  a

let workload =
  {
    Workload.w_name = "li";
    w_paper_name = "022.li (XLISP 1.6)";
    w_lang = Workload.C_int;
    w_descr = "stack-machine interpreter (lisp-machine analogue)";
    w_program = program;
    w_seeded_globals = [ "code_len" ];
    w_datasets =
      [
        bytecode_dataset "8queens"
          "queens backtracking search (board scaled 8->7 for simulator time)"
          (assemble (queens 7));
        bytecode_dataset "9queens"
          "larger queens search (board scaled 9->8 for simulator time)"
          (assemble (queens 8));
        bytecode_dataset "kitty" "mesh relaxation (tomcatv rewritten for the interpreter)"
          ~fdata:kitty_fdata
          (assemble (kitty ~m:kitty_m ~iters:kitty_iters));
        bytecode_dataset "sieve" "prime sieve from the pseudo-assembly simulator"
          (assemble (sieve 2600));
      ];
  }
