(** 022.li analogue: a stack-machine interpreter (dispatch switch over
    ~30 opcodes) whose datasets are bytecode programs — queens
    backtracking, a prime sieve, and a numeric relaxation. *)

val program : Fisher92_minic.Ast.program

(** {1 Assembler} *)

type asm =
  | Op of int * int  (** opcode, literal argument *)
  | Opl of int * string  (** opcode, label argument *)
  | Lbl of string  (** label definition *)

val assemble : asm list -> int array
(** Two-pass assembly to the interpreter's opcode/argument pairs.
    @raise Invalid_argument on an undefined label. *)

val queens : int -> asm list
(** Iterative backtracking n-queens; outputs the solution count. *)

val sieve : int -> asm list
(** Prime sieve below the limit; outputs the prime count. *)

val kitty : m:int -> iters:int -> asm list
(** 1D relaxation over the float data region (tomcatv-in-the-interpreter);
    outputs the scaled midpoint value. *)

val kitty_m : int
val kitty_iters : int

(** {1 Test oracles} *)

val reference_queens_count : int -> int
val reference_sieve_count : int -> int

val workload : Workload.t
