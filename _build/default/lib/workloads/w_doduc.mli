(** 015.doduc analogue: deterministic Monte-Carlo particle transport with
    energy-group table searches and threshold branching. *)

val program : Fisher92_minic.Ast.program
val workload : Workload.t
