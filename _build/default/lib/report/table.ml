let inum n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 8) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun k ch ->
      if k > 0 && (len - k) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let fnum ?(decimals = 1) x =
  if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else if Float.is_nan x then "nan"
  else if Float.abs x >= 10000.0 then inum (int_of_float (Float.round x))
  else Printf.sprintf "%.*f" decimals x

let pct x = Printf.sprintf "%.1f%%" x

let looks_numeric cell =
  cell <> ""
  && String.for_all
       (fun ch -> (ch >= '0' && ch <= '9') || String.contains "+-.,%infax " ch)
       cell

let render ~header rows =
  let cols = List.length header in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri
      (fun c cell ->
        if c < cols then widths.(c) <- max widths.(c) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let emit_row row ~is_header =
    List.iteri
      (fun c cell ->
        if c > 0 then Buffer.add_string buf "  ";
        let w = if c < cols then widths.(c) else String.length cell in
        let pad = max 0 (w - String.length cell) in
        if (not is_header) && looks_numeric cell then begin
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        end
        else begin
          Buffer.add_string buf cell;
          Buffer.add_string buf (String.make pad ' ')
        end)
      row;
    (* trim trailing spaces *)
    while
      Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) = ' '
    do
      Buffer.truncate buf (Buffer.length buf - 1)
    done;
    Buffer.add_char buf '\n'
  in
  emit_row header ~is_header:true;
  Buffer.add_string buf
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char buf '\n';
  List.iter (fun row -> emit_row row ~is_header:false) rows;
  Buffer.contents buf
