(** Plain-text table rendering for the experiment reports. *)

val render : header:string list -> string list list -> string
(** Aligned columns with a rule under the header.  Numeric-looking cells
    are right-aligned, text cells left-aligned. *)

val fnum : ?decimals:int -> float -> string
(** Compact float formatting: thousands separators for big magnitudes,
    [decimals] places (default 1) otherwise; ["inf"] for infinity. *)

val inum : int -> string
(** Integer with thousands separators. *)

val pct : float -> string
(** Percentage with one decimal, e.g. ["83.4%"]. *)
