lib/report/table.mli:
