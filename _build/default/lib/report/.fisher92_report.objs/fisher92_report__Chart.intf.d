lib/report/chart.mli:
