(** ASCII bar charts in the style of the paper's figures: per item, one
    bar per series (the paper's black and white bars). *)

type series = { s_name : string; s_value : float }

val grouped :
  ?width:int ->
  title:string ->
  unit_label:string ->
  (string * series list) list ->
  string
(** [grouped ~title ~unit_label items] renders each item's series as
    horizontal bars scaled to the global maximum (default width 46
    characters).  Infinite values render as full bars tagged ["inf"]. *)
