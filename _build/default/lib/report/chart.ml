type series = { s_name : string; s_value : float }

let grouped ?(width = 46) ~title ~unit_label items =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length title) '=');
  Buffer.add_char buf '\n';
  let finite_max =
    List.fold_left
      (fun acc (_, series) ->
        List.fold_left
          (fun acc s ->
            if s.s_value = infinity || Float.is_nan s.s_value then acc
            else Float.max acc s.s_value)
          acc series)
      1.0 items
  in
  let label_w =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 items
  in
  let series_w =
    List.fold_left
      (fun acc (_, series) ->
        List.fold_left (fun acc s -> max acc (String.length s.s_name)) acc series)
      0 items
  in
  List.iter
    (fun (label, series) ->
      List.iteri
        (fun k s ->
          let item_label = if k = 0 then label else "" in
          let bar_len =
            if s.s_value = infinity then width
            else
              int_of_float
                (Float.round (s.s_value /. finite_max *. float_of_int width))
          in
          let bar_len = max 0 (min width bar_len) in
          let value_text =
            if s.s_value = infinity then "inf"
            else Table.fnum s.s_value
          in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s  %-*s |%s%s %s\n" label_w item_label
               series_w s.s_name
               (String.make bar_len '#')
               (String.make (width - bar_len) ' ')
               value_text))
        series;
      Buffer.add_char buf '\n')
    items;
  Buffer.add_string buf (Printf.sprintf "  (bar scale: %s)\n" unit_label);
  Buffer.contents buf
