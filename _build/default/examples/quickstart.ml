(* Quickstart: write a small program, compile it, profile a run, and see
   how well the profile predicts another input.

   Run with:  dune exec examples/quickstart.exe *)

open Fisher92_minic.Dsl
module Ast = Fisher92_minic.Ast
module Vm = Fisher92_vm.Vm
module Profile = Fisher92_profile.Profile
module Prediction = Fisher92_predict.Prediction
module Measure = Fisher92_metrics.Measure

(* A branchy little program: counts values in an input array that clear a
   threshold, with a special case for multiples of seven. *)
let source =
  program "threshold" ~entry:"main"
    ~globals:[ gint "n" 0; gint "cut" 50 ]
    ~arrays:[ iarr "input" 4096 ]
    [
      fn "main" [] ~ret:Ast.Tint
        [
          leti "hits" (i 0);
          leti "sevens" (i 0);
          for_ "k" (i 0) (g "n")
            [
              leti "x" (ld "input" (v "k"));
              when_ (v "x" >: g "cut")
                [
                  incr_ "hits";
                  when_ (v "x" %: i 7 =: i 0) [ incr_ "sevens" ];
                ];
            ];
          out (v "hits");
          out (v "sevens");
          ret (v "hits");
        ];
    ]

let make_input ~seed ~n ~bias =
  let rng = Fisher92_util.Rng.create seed in
  Array.init n (fun _ -> Fisher92_util.Rng.int rng bias)

let run ir input =
  Vm.run ir ~iargs:[] ~fargs:[]
    ~arrays:[ ("input", `Ints input); ("$n", `Ints [| Array.length input |]) ]

let () =
  (* 1. compile (paper configuration: classical opts on, DCE off) *)
  let ir = Fisher92_minic.Compile.compile source in
  Printf.printf "compiled %s: %d static instructions, %d branch sites\n\n"
    "threshold"
    (Fisher92_ir.Program.static_size ir)
    (Fisher92_ir.Program.n_sites ir);

  (* 2. run a training input and collect the branch profile *)
  let training = make_input ~seed:1 ~n:3000 ~bias:100 in
  let r1 = run ir training in
  let profile = Profile.of_run ~program:"threshold" r1 in
  Printf.printf "training run: %d instructions, %d branches, %.1f%% taken\n"
    r1.total
    (Vm.conditional_branches r1)
    (Profile.percent_taken profile);

  (* 3. predict a different input with that profile *)
  let test_input = make_input ~seed:2 ~n:3000 ~bias:90 in
  let r2 = run ir test_input in
  let target = Measure.of_result ~program:"threshold" ~dataset:"test" r2 in
  let prediction = Prediction.of_profile profile in
  Printf.printf "\ntest run predicted by the training profile:\n";
  Printf.printf "  %% branches correct:        %.1f%%\n"
    (Measure.percent_correct target prediction);
  Printf.printf "  instrs/break (no pred):    %.1f\n"
    (Measure.ipb_unpredicted target);
  Printf.printf "  instrs/break (profile):    %.1f\n"
    (Measure.ipb_predicted target prediction);
  Printf.printf "  instrs/break (best case):  %.1f\n" (Measure.ipb_self target);
  Printf.printf "  fraction of best achieved: %.1f%%\n"
    (100.0 *. Measure.prediction_quality target prediction)
