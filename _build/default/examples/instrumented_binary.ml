(* The paper's two-binary methodology, reproduced for real:

   - build the IFPROBBER binary (counter updates before every branch);
   - run it and read the counters out of the simulated memory;
   - compare against the clean binary: identical behaviour, identical
     counters, measurably more instructions (the perturbation that
     forced the paper to keep a separate MFPixie binary).

   Run with:  dune exec examples/instrumented_binary.exe *)

module Registry = Fisher92_workloads.Registry
module Workload = Fisher92_workloads.Workload
module Vm = Fisher92_vm.Vm
module Instrument = Fisher92_ir.Instrument

let () =
  let w = Registry.find "eqntott" in
  let clean =
    Fisher92_minic.Compile.compile
      ~options:(Workload.compile_options w)
      w.w_program
  in
  let instrumented = Instrument.branch_counters clean in
  Printf.printf "clean binary:        %5d static instructions\n"
    (Fisher92_ir.Program.static_size clean);
  Printf.printf "instrumented binary: %5d static instructions (%d branch sites)\n\n"
    (Fisher92_ir.Program.static_size instrumented)
    (Fisher92_ir.Program.n_sites clean);

  let d = Workload.dataset w "add4" in
  let run ir config =
    Vm.run ~config ir ~iargs:d.ds_iargs ~fargs:d.ds_fargs ~arrays:d.ds_arrays
  in
  let r_clean = run clean Vm.default_config in
  let r_inst =
    run instrumented
      { Vm.default_config with dump_arrays = [ Instrument.counters_array ] }
  in
  Printf.printf "dataset %s:\n" d.ds_name;
  Printf.printf "  clean run:        %9d instructions\n" r_clean.total;
  Printf.printf "  instrumented run: %9d instructions (+%.1f%%)\n" r_inst.total
    (100.0 *. ((float_of_int r_inst.total /. float_of_int r_clean.total) -. 1.0));
  Printf.printf "  same outputs:     %b\n\n" (r_clean.outputs = r_inst.outputs);

  (* the counters the program accumulated in its own memory *)
  (match r_inst.dumped with
  | [ (_, `Ints counters) ] ->
    let mismatches = ref 0 in
    Array.iteri
      (fun s enc ->
        if
          counters.(2 * s) <> enc
          || counters.((2 * s) + 1) <> r_clean.site_taken.(s)
        then incr mismatches)
      r_clean.site_encountered;
    Printf.printf
      "in-program counters vs external profile: %d mismatches over %d sites\n"
      !mismatches
      (Array.length r_clean.site_encountered);
    Printf.printf "\nbusiest branch sites (in-program counters):\n";
    let sites =
      List.init (Array.length r_clean.site_encountered) (fun s ->
          (counters.(2 * s), counters.((2 * s) + 1), s))
      |> List.sort compare |> List.rev
    in
    List.iteri
      (fun k (enc, taken, s) ->
        if k < 6 then
          Printf.printf "  %-28s executed %8d  taken %8d (%.0f%%)\n"
            (Fisher92_ir.Program.site_label clean s)
            enc taken
            (100.0 *. float_of_int taken /. float_of_int (max enc 1)))
      sites
  | _ -> print_endline "missing counters dump")
