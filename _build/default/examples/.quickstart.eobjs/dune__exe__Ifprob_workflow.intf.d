examples/ifprob_workflow.mli:
