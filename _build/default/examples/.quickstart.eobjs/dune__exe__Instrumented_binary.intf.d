examples/instrumented_binary.mli:
