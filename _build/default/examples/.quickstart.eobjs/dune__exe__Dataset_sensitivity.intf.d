examples/dataset_sensitivity.mli:
