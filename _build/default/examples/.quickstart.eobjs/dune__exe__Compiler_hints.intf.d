examples/compiler_hints.mli:
