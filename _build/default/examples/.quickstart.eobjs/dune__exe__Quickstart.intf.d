examples/quickstart.mli:
