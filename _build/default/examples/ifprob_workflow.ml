(* The paper's IFPROBBER workflow, end to end:

   1. run the instrumented program over several datasets, accumulating
      branch counters in a database;
   2. save/reload the database (the paper kept it across runs);
   3. feed the totals back as IFPROB directives;
   4. use the accumulated profile to predict a fresh dataset.

   Run with:  dune exec examples/ifprob_workflow.exe *)

module Registry = Fisher92_workloads.Registry
module Workload = Fisher92_workloads.Workload
module Vm = Fisher92_vm.Vm
module Profile = Fisher92_profile.Profile
module Db = Fisher92_profile.Db
module Directive = Fisher92_profile.Directive
module Prediction = Fisher92_predict.Prediction
module Measure = Fisher92_metrics.Measure

let () =
  let w = Registry.find "compress" in
  let ir =
    Fisher92_minic.Compile.compile
      ~options:(Workload.compile_options w)
      w.w_program
  in
  let db = Db.create ~program:"compress" ~n_sites:(Fisher92_ir.Program.n_sites ir) in

  (* 1. profile all but one dataset *)
  let training, held_out =
    match w.w_datasets with
    | held :: rest -> (rest, held)
    | [] -> assert false
  in
  List.iter
    (fun (d : Workload.dataset) ->
      let r = Vm.run ir ~iargs:d.ds_iargs ~fargs:d.ds_fargs ~arrays:d.ds_arrays in
      Db.record db ~dataset:d.ds_name (Profile.of_run ~program:"compress" r);
      Printf.printf "profiled %-8s %9d instructions, %8d branches\n" d.ds_name
        r.total (Vm.conditional_branches r))
    training;

  (* 2. serialize and reload, as the on-disk database would *)
  let text = Db.save db in
  let db = Db.load text in
  Printf.printf "\ndatabase: %d bytes, datasets: %s\n" (String.length text)
    (String.concat ", " (Db.datasets db));

  (* 3. render the feedback directives the compiler would consume *)
  let accumulated = Db.accumulated db in
  let directives = Directive.of_profile ir accumulated in
  Printf.printf "\nfirst directives fed back into the source:\n";
  List.iteri
    (fun k d -> if k < 6 then Printf.printf "  %s\n" (Directive.render d))
    directives;
  Printf.printf "  ... (%d total)\n" (List.length directives);

  (* 4. predict the held-out dataset *)
  let r =
    Vm.run ir ~iargs:held_out.ds_iargs ~fargs:held_out.ds_fargs
      ~arrays:held_out.ds_arrays
  in
  let target = Measure.of_result ~program:"compress" ~dataset:held_out.ds_name r in
  let prediction = Prediction.of_profile accumulated in
  Printf.printf
    "\npredicting held-out dataset %s with the accumulated profile:\n"
    held_out.ds_name;
  Printf.printf "  %% correct:          %.1f%%\n"
    (Measure.percent_correct target prediction);
  Printf.printf "  instrs/break:       %.1f (best possible %.1f)\n"
    (Measure.ipb_predicted target prediction)
    (Measure.ipb_self target);
  Printf.printf "  quality:            %.1f%% of best\n"
    (100.0 *. Measure.prediction_quality target prediction)
