(* The paper's central question on one program: how well does each spice
   dataset predict each other one?  Prints the full predictor x target
   quality matrix plus the accumulated-predictor column, showing both the
   "branches are predictable" headline and the spice anomaly.

   Run with:  dune exec examples/dataset_sensitivity.exe *)

module Registry = Fisher92_workloads.Registry
module Workload = Fisher92_workloads.Workload
module Vm = Fisher92_vm.Vm
module Measure = Fisher92_metrics.Measure
module Cross = Fisher92_metrics.Cross
module Table = Fisher92_report.Table

let () =
  let w = Registry.find "spice" in
  let ir =
    Fisher92_minic.Compile.compile
      ~options:(Workload.compile_options w)
      w.w_program
  in
  let runs =
    List.map
      (fun (d : Workload.dataset) ->
        let r = Vm.run ir ~iargs:d.ds_iargs ~fargs:d.ds_fargs ~arrays:d.ds_arrays in
        Measure.of_result ~program:"spice" ~dataset:d.ds_name r)
      w.w_datasets
  in
  let names = List.map (fun (r : Measure.run) -> r.dataset) runs in
  let matrix = Cross.matrix runs in
  let quality p t =
    match
      List.find_opt (fun (p', t', _) -> String.equal p p' && String.equal t t') matrix
    with
    | Some (_, _, q) -> Printf.sprintf "%3.0f" (100.0 *. q)
    | None -> "  -"
  in
  print_endline
    "Cross-prediction quality (% of self-prediction), predictor rows x target columns:";
  print_string
    (Table.render
       ~header:("PREDICTOR \\ TARGET" :: names)
       (List.map (fun p -> p :: List.map (fun t -> quality p t) names) names));
  print_newline ();
  print_endline "Summary per target (best/worst single predictor, sum-of-others):";
  print_string
    (Table.render
       ~header:[ "TARGET"; "SELF I/B"; "OTHERS I/B"; "BEST"; "WORST" ]
       (List.map
          (fun (e : Cross.entry) ->
            [
              e.target;
              Table.fnum e.self_ipb;
              (match e.others_ipb with Some v -> Table.fnum v | None -> "-");
              (match e.best with
              | Some (n, q) -> Printf.sprintf "%s (%.0f%%)" n (100.0 *. q)
              | None -> "-");
              (match e.worst with
              | Some (n, q) -> Printf.sprintf "%s (%.0f%%)" n (100.0 *. q)
              | None -> "-");
            ])
          (Cross.analyze runs)))
