(* Static prediction sources compared, on one branchy workload: profile
   feedback vs the paper's "very simple heuristics" vs hardware 1/2-bit
   counters (Smith 81).

   Run with:  dune exec examples/compiler_hints.exe *)

module Registry = Fisher92_workloads.Registry
module Workload = Fisher92_workloads.Workload
module Vm = Fisher92_vm.Vm
module Measure = Fisher92_metrics.Measure
module Heuristic = Fisher92_predict.Heuristic
module Dynamic = Fisher92_predict.Dynamic
module Table = Fisher92_report.Table

let () =
  let w = Registry.find "li" in
  let ir =
    Fisher92_minic.Compile.compile
      ~options:(Workload.compile_options w)
      w.w_program
  in
  let d = Workload.dataset w "sieve" in
  let r = Vm.run ir ~iargs:d.ds_iargs ~fargs:d.ds_fargs ~arrays:d.ds_arrays in
  let run = Measure.of_result ~program:"li" ~dataset:"sieve" r in

  let static_rows =
    ("self profile (best possible)", Measure.self_prediction run)
    :: List.map
         (fun (h : Heuristic.t) -> ("heuristic: " ^ h.h_name, h.h_derive ir))
         Heuristic.all
  in
  let rows =
    List.map
      (fun (name, p) ->
        [
          name;
          Table.pct (Measure.percent_correct run p);
          Table.fnum (Measure.ipb_predicted run p);
        ])
      static_rows
  in
  (* dynamic predictors need to watch the run *)
  let dynamic_row scheme =
    let sim = Dynamic.create scheme ~n_sites:(Fisher92_ir.Program.n_sites ir) in
    let config =
      { Vm.default_config with on_branch = Some (Dynamic.hook sim) }
    in
    let (_ : Vm.result) =
      Vm.run ~config ir ~iargs:d.ds_iargs ~fargs:d.ds_fargs ~arrays:d.ds_arrays
    in
    [
      "hardware: " ^ Dynamic.scheme_name scheme;
      Table.pct (Dynamic.percent_correct sim);
      "-";
    ]
  in
  let rows = rows @ [ dynamic_row Dynamic.Last_direction; dynamic_row Dynamic.Two_bit ] in
  print_string
    (Table.render ~header:[ "PREDICTOR"; "% CORRECT"; "INSTRS/BREAK" ] rows)
