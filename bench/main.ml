(* Reproduction harness: regenerates every table and figure of
   Fisher & Freudenberger (ASPLOS 1992).

   Usage:
     main.exe                    run every experiment, print paper-style output
     main.exe <section> ...      run selected sections only (see --list)
     main.exe --list             print the experiment registry and exit
     main.exe --timing ...       additionally print the per-workload
                                 compile/simulate/cache-hit timing table
     main.exe --domains N        run the study over N domains
     main.exe --parbench         compare 1-domain vs N-domain vs warm-cache
                                 wall clock of the full study
     main.exe --tracebench       compare per-scheme VM re-execution against
                                 record-once + trace-driven simulation
     main.exe --bechamel         additionally run Bechamel wall-clock
                                 micro-benchmarks (one Test.make per
                                 table/figure harness, on a trimmed study)

   The experiment pipeline executes every (program, dataset) pair once on
   the simulator (or serves it from the on-disk study cache; set
   FISHER92_NO_CACHE=1 to force simulation); everything is derived from
   those runs. *)

(* The section list is the experiment registry — never a hand-written
   name list; going through [Experiments.registry] forces the
   registrations to be linked. *)
let registry () = Fisher92.Experiments.registry ()

let valid_sections () =
  List.map (fun e -> e.Fisher92.Experiment.e_id) (registry ())

let unknown_sections requested =
  let valid = valid_sections () in
  List.filter (fun s -> not (List.mem s valid)) requested

let run_section study name =
  match Fisher92.Experiment.find name with
  | Some e -> print_endline (Fisher92.Experiment.render_text e study)
  | None ->
    (* unreachable: sections are validated before any work starts *)
    Printf.eprintf "unknown section %S; valid sections: %s\n" name
      (String.concat " " (valid_sections ()));
    exit 2

(* ---------- 1-domain vs N-domain vs warm-cache comparison ---------- *)

let parbench domains =
  let module S = Fisher92.Study in
  let module C = Fisher92.Study_cache in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let render study = Fisher92.Experiments.render_all study in
  C.clear ();
  let (r_seq, _), t_seq =
    time (fun () -> S.load_timed ~domains:1 ~cache:false ())
  in
  let (r_par, _), t_par =
    time (fun () -> S.load_timed ~domains ~cache:false ())
  in
  C.clear ();
  let (_, _), t_cold = time (fun () -> S.load_timed ~domains ()) in
  let (r_warm, warm_tm), t_warm = time (fun () -> S.load_timed ~domains ()) in
  let hits =
    List.concat_map (fun tm -> tm.S.tm_runs) warm_tm
    |> List.filter (fun r -> r.S.rt_cached)
    |> List.length
  in
  let runs = List.length (List.concat_map (fun tm -> tm.S.tm_runs) warm_tm) in
  let seq_out = render r_seq in
  Printf.printf "study wall clock (full registry; cache: %s):\n"
    (if C.enabled () then C.cache_dir () else "disabled");
  Printf.printf "  sequential, no cache (1 domain):   %6.2fs\n" t_seq;
  Printf.printf "  parallel,   no cache (%d domains): %6.2fs  (%.2fx)\n"
    domains t_par (t_seq /. t_par);
  Printf.printf "  parallel,   cold cache:            %6.2fs\n" t_cold;
  Printf.printf "  parallel,   warm cache:            %6.2fs  (%.2fx, %d/%d hits)\n"
    t_warm (t_seq /. t_warm) hits runs;
  Printf.printf "  outputs byte-identical: %b\n"
    (String.equal seq_out (render r_par) && String.equal seq_out (render r_warm))

(* ---------- trace-driven simulation vs VM re-execution ---------- *)

let tracebench () =
  let module Trace = Fisher92_trace.Trace in
  let module Tracing = Fisher92.Tracing in
  let module Dynamic = Fisher92_predict.Dynamic in
  let module Workload = Fisher92_workloads.Workload in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let schemes = Fisher92.Experiments.dynsim_schemes () in
  let workloads =
    List.map Fisher92_workloads.Registry.find
      [ "lfk"; "doduc"; "compress"; "uncompress"; "spiff" ]
  in
  Printf.printf
    "trace-driven simulation vs one VM re-execution per scheme\n\
     (%d schemes; first dataset of each workload):\n"
    (List.length schemes);
  let speedups =
    List.map
      (fun (w : Workload.t) ->
        let ir = Fisher92.Study.compile_variant w in
        let d = List.hd w.w_datasets in
        let n_sites = Fisher92_ir.Program.n_sites ir in
        (* baseline: what the inline [dynamic] experiment pays per scheme *)
        let inline_sims, t_vm =
          time (fun () ->
              List.map
                (fun scheme ->
                  let sim = Dynamic.create scheme ~n_sites in
                  let config =
                    {
                      Fisher92_vm.Vm.default_config with
                      on_branch = Some (Dynamic.hook sim);
                    }
                  in
                  let (_ : Fisher92_vm.Vm.result) =
                    Fisher92.Study.execute ir d ~config ()
                  in
                  sim)
                schemes)
        in
        let writer, t_record =
          time (fun () -> Tracing.record ~ir ~program:w.w_name d)
        in
        let reader = Trace.Reader.of_string (Trace.Writer.render writer) in
        let trace_sims, t_sim =
          time (fun () ->
              List.map
                (fun scheme ->
                  Dynamic.simulate scheme ~n_sites (Trace.Reader.iter reader))
                schemes)
        in
        let agree =
          List.for_all2
            (fun a b ->
              Dynamic.correct a = Dynamic.correct b
              && Dynamic.incorrect a = Dynamic.incorrect b)
            inline_sims trace_sims
        in
        Printf.printf
          "  %-10s %9d ev  vm %6.3fs  record %6.3fs  sim %6.3fs  \
           (warm %5.1fx)  identical %b\n"
          w.w_name
          (Trace.Writer.events writer)
          t_vm t_record t_sim (t_vm /. t_sim) agree;
        t_vm /. t_sim)
      workloads
  in
  Printf.printf "  geomean warm-trace speedup over per-scheme VM: %.1fx\n"
    (Fisher92_util.Stats.geomean speedups)

(* ---------- bechamel timing micro-benchmarks ---------- *)

let bechamel_suite () =
  let open Bechamel in
  (* a small but non-trivial study: one FP and three C workloads *)
  let mini =
    lazy
      (Fisher92.Study.load
         ~workloads:
           [
             Fisher92_workloads.Registry.find "doduc";
             Fisher92_workloads.Registry.find "compress";
             Fisher92_workloads.Registry.find "uncompress";
             Fisher92_workloads.Registry.find "spiff";
           ]
         ())
  in
  let module E = Fisher92.Experiments in
  let bench name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      bench "study-load(doduc)" (fun () ->
          Fisher92.Study.load
            ~workloads:[ Fisher92_workloads.Registry.find "doduc" ]
            ());
      bench "table1(dead-code)" (fun () -> E.table1 (Lazy.force mini));
      bench "table3(self-ipb)" (fun () -> E.table3 (Lazy.force mini));
      bench "fig1(unpredicted)" (fun () -> E.fig1 (Lazy.force mini));
      bench "fig2(predicted)" (fun () -> E.fig2 (Lazy.force mini));
      bench "fig3(best-worst)" (fun () -> E.fig3 (Lazy.force mini));
      bench "taken(percent)" (fun () -> E.taken (Lazy.force mini));
      bench "combine(strategies)" (fun () -> E.combine (Lazy.force mini));
      bench "heuristics" (fun () -> E.heuristics (Lazy.force mini));
      bench "crossmode" (fun () -> E.crossmode (Lazy.force mini));
      bench "dynamic(1/2-bit)" (fun () -> E.dynamic (Lazy.force mini));
      bench "dynsim(trace)" (fun () -> E.dynsim (Lazy.force mini));
      bench "predictability" (fun () -> E.predictability (Lazy.force mini));
      bench "inline-ablation" (fun () -> E.inline_ablation (Lazy.force mini));
      bench "gaps(distribution)" (fun () -> E.gaps (Lazy.force mini));
      bench "switchsort(reorder)" (fun () -> E.switchsort (Lazy.force mini));
      bench "static-proof" (fun () -> E.static_proof (Lazy.force mini));
      bench "brclass(doduc)" (fun () ->
          Fisher92_analysis.Brclass.classify
            (List.hd (Fisher92.Study.items (Lazy.force mini))).Fisher92.Study.ir);
    ]
  in
  let test = Test.make_grouped ~name:"fisher92" tests in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 50) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let raw = benchmark test in
  let results = analyze raw in
  print_endline "Bechamel wall-clock (monotonic ns per run):";
  let rows = ref [] in
  Hashtbl.iter (fun name ols -> rows := (name, ols) :: !rows) results;
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-36s %14.0f ns\n" name est
      | _ -> Printf.printf "  %-36s (no estimate)\n" name)
    (List.sort compare !rows)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let bech = List.mem "--bechamel" args in
  let timing = List.mem "--timing" args in
  let par = List.mem "--parbench" args in
  let tracing = List.mem "--tracebench" args in
  let listing = List.mem "--list" args in
  let domains = ref None in
  let rec strip = function
    | [] -> []
    | "--domains" :: n :: rest -> (
      match int_of_string_opt n with
      | Some d when d >= 1 ->
        domains := Some d;
        strip rest
      | Some _ | None ->
        Printf.eprintf "--domains expects a positive integer, got %S\n" n;
        exit 2)
    | "--domains" :: [] ->
      Printf.eprintf "--domains expects a positive integer\n";
      exit 2
    | ("--bechamel" | "--timing" | "--parbench" | "--tracebench" | "--list")
      :: rest ->
      strip rest
    | s :: rest -> s :: strip rest
  in
  let sections = strip args in
  if listing then begin
    ignore (registry ()); (* force the registrations before listing *)
    print_string (Fisher92.Experiment.list_table ());
    exit 0
  end;
  (match unknown_sections sections with
  | [] -> ()
  | bad ->
    Printf.eprintf "unknown section%s: %s; valid sections: %s\n"
      (match bad with [ _ ] -> "" | _ -> "s")
      (String.concat " " bad)
      (String.concat " " (valid_sections ()));
    exit 2);
  let sections = if sections = [] then valid_sections () else sections in
  let domains = !domains in
  if par then parbench (match domains with Some d -> d | None -> Fisher92_util.Pool.default_domains ())
  else if tracing then tracebench ()
  else begin
    let t0 = Unix.gettimeofday () in
    let timings = ref None in
    let study =
      lazy
        (let s, tm = Fisher92.Study.load_timed ?domains () in
         timings := Some tm;
         s)
    in
    List.iter (run_section study) sections;
    (match (timing, !timings) with
    | true, Some tm -> print_string (Fisher92.Study.render_timings tm)
    | true, None ->
      print_endline "(no study was loaded; nothing to time)"
    | false, _ -> ());
    Printf.printf "\n[experiments completed in %.1fs]\n" (Unix.gettimeofday () -. t0);
    if bech then bechamel_suite ()
  end
