(* Reproduction harness: regenerates every table and figure of
   Fisher & Freudenberger (ASPLOS 1992).

   Usage:
     main.exe                    run every experiment, print paper-style output
     main.exe <section> ...      run selected sections only (see --list)
     main.exe --list             print the experiment registry and exit
     main.exe --timing ...       additionally print the per-workload
                                 compile/simulate/cache-hit timing table
     main.exe --domains N        run the study over N domains
     main.exe --parbench         compare 1-domain vs N-domain vs warm-cache
                                 wall clock of the full study
     main.exe --tracebench       compare per-scheme VM re-execution against
                                 record-once + trace-driven simulation
                                 (writes BENCH_trace.json)
     main.exe --ingestbench      load-test the crash-safe ingest service:
                                 N domains x M synthetic clients; reports
                                 deltas/s, merge-tail latency, recovery
                                 time (writes BENCH_ingest.json)
     main.exe --bechamel         additionally run Bechamel wall-clock
                                 micro-benchmarks (one Test.make per
                                 table/figure harness, on a trimmed study)

   The experiment pipeline executes every (program, dataset) pair once on
   the simulator (or serves it from the on-disk study cache; set
   FISHER92_NO_CACHE=1 to force simulation); everything is derived from
   those runs. *)

(* The section list is the experiment registry — never a hand-written
   name list; going through [Experiments.registry] forces the
   registrations to be linked. *)
let registry () = Fisher92_synth.Sweep.registry ()

let valid_sections () =
  List.map (fun e -> e.Fisher92.Experiment.e_id) (registry ())

let unknown_sections requested =
  let valid = valid_sections () in
  List.filter (fun s -> not (List.mem s valid)) requested

let run_section study name =
  match Fisher92.Experiment.find name with
  | Some e -> print_endline (Fisher92.Experiment.render_text e study)
  | None ->
    (* unreachable: sections are validated before any work starts *)
    Printf.eprintf "unknown section %S; valid sections: %s\n" name
      (String.concat " " (valid_sections ()));
    exit 2

(* ---------- 1-domain vs N-domain vs warm-cache comparison ---------- *)

let parbench domains =
  let module S = Fisher92.Study in
  let module C = Fisher92.Study_cache in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let render study = Fisher92.Experiments.render_all study in
  C.clear ();
  let (r_seq, _), t_seq =
    time (fun () -> S.load_timed ~domains:1 ~cache:false ())
  in
  let (r_par, _), t_par =
    time (fun () -> S.load_timed ~domains ~cache:false ())
  in
  C.clear ();
  let (_, _), t_cold = time (fun () -> S.load_timed ~domains ()) in
  let (r_warm, warm_tm), t_warm = time (fun () -> S.load_timed ~domains ()) in
  let hits =
    List.concat_map (fun tm -> tm.S.tm_runs) warm_tm
    |> List.filter (fun r -> r.S.rt_cached)
    |> List.length
  in
  let runs = List.length (List.concat_map (fun tm -> tm.S.tm_runs) warm_tm) in
  let seq_out = render r_seq in
  Printf.printf "study wall clock (full registry; cache: %s):\n"
    (if C.enabled () then C.cache_dir () else "disabled");
  Printf.printf "  sequential, no cache (1 domain):   %6.2fs\n" t_seq;
  Printf.printf "  parallel,   no cache (%d domains): %6.2fs  (%.2fx)\n"
    domains t_par (t_seq /. t_par);
  Printf.printf "  parallel,   cold cache:            %6.2fs\n" t_cold;
  Printf.printf "  parallel,   warm cache:            %6.2fs  (%.2fx, %d/%d hits)\n"
    t_warm (t_seq /. t_warm) hits runs;
  Printf.printf "  outputs byte-identical: %b\n"
    (String.equal seq_out (render r_par) && String.equal seq_out (render r_warm))

(* ---------- BENCH_*.json emission ---------- *)

(* Tiny hand-rolled JSON: the perf-trajectory files hold numbers and
   short names only, so a serializer dependency would be overkill. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type json =
  | J_num of float
  | J_int of int
  | J_bool of bool
  | J_str of string
  | J_obj of (string * json) list
  | J_arr of json list

let rec render_json ~indent j =
  let pad = String.make indent ' ' in
  match j with
  | J_num x -> Printf.sprintf "%.6g" x
  | J_int n -> string_of_int n
  | J_bool b -> string_of_bool b
  | J_str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | J_obj fields ->
    let inner =
      List.map
        (fun (k, v) ->
          Printf.sprintf "%s  \"%s\": %s" pad (json_escape k)
            (render_json ~indent:(indent + 2) v))
        fields
    in
    Printf.sprintf "{\n%s\n%s}" (String.concat ",\n" inner) pad
  | J_arr items ->
    let inner =
      List.map
        (fun v ->
          Printf.sprintf "%s  %s" pad (render_json ~indent:(indent + 2) v))
        items
    in
    Printf.sprintf "[\n%s\n%s]" (String.concat ",\n" inner) pad

let write_json path j =
  Fisher92_util.Sectfile.write_atomic ~path ~tmp_prefix:"bench"
    (render_json ~indent:0 j ^ "\n");
  Printf.printf "  wrote %s\n" path

(* ---------- trace-driven simulation vs VM re-execution ---------- *)

type trace_row = {
  tr_name : string;
  tr_events : int;
  tr_vm_s : float;  (* per-scheme inline runs, reference interpreter *)
  tr_vm_threaded_s : float;  (* per-scheme inline runs, threaded engine *)
  tr_plain_interp_s : float;  (* one hookless run, reference interpreter *)
  tr_plain_threaded_s : float;  (* one hookless run, threaded engine *)
  tr_record_s : float;
  tr_decode_s : float;  (* one run-level decode pass, no consumers *)
  tr_sim_s : float;  (* one decode fanned out over every scheme *)
  tr_identical : bool;
}

let tracebench () =
  let module Trace = Fisher92_trace.Trace in
  let module Tracing = Fisher92.Tracing in
  let module Dynamic = Fisher92_predict.Dynamic in
  let module Workload = Fisher92_workloads.Workload in
  let module Vm = Fisher92_vm.Vm in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* every phase here is milliseconds-scale and deterministic, so
     best-of-3 keeps scheduler and GC noise out of the published
     ratios without changing what is measured *)
  let time_best f =
    let r, t0 = time f in
    let best = ref t0 in
    for _ = 1 to 2 do
      let _, t = time f in
      if t < !best then best := t
    done;
    (r, !best)
  in
  let schemes = Fisher92.Experiments.zoo_schemes () in
  let workloads =
    List.map Fisher92_workloads.Registry.find
      [ "lfk"; "doduc"; "compress"; "uncompress"; "spiff" ]
  in
  Printf.printf
    "trace-driven simulation vs one VM re-execution per scheme\n\
     (%d schemes; first dataset of each workload):\n"
    (List.length schemes);
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let ir = Fisher92.Study.compile_variant w in
        let d = List.hd w.w_datasets in
        let n_sites = Fisher92_ir.Program.n_sites ir in
        let inline_runs engine =
          List.map
            (fun scheme ->
              let sim = Dynamic.create scheme ~n_sites in
              let config =
                {
                  Vm.default_config with
                  on_branch = Some (Dynamic.hook sim);
                  engine = Some engine;
                }
              in
              let (_ : Vm.result) = Fisher92.Study.execute ir d ~config () in
              sim)
            schemes
        in
        (* historical baseline: what the inline [dynamic] experiment
           paid per scheme before this engine existed *)
        let interp_sims, t_vm = time_best (fun () -> inline_runs Vm.Interp) in
        let threaded_sims, t_vm_threaded =
          time_best (fun () -> inline_runs Vm.Threaded)
        in
        (* hookless runs on both engines: the cost a plain measurement
           pays, and the hook-free-specialization note's numbers *)
        let plain engine =
          let config = { Vm.default_config with engine = Some engine } in
          let (_ : Vm.result) = Fisher92.Study.execute ir d ~config () in
          ()
        in
        let (), t_plain_interp = time_best (fun () -> plain Vm.Interp) in
        let (), t_plain_threaded = time_best (fun () -> plain Vm.Threaded) in
        let writer, t_record =
          time_best (fun () -> Tracing.record ~ir ~program:w.w_name d)
        in
        let reader = Trace.Reader.of_string (Trace.Writer.render writer) in
        (* phase split: decode alone, then decode + every table-update
           loop (one shared decode fanned out over all schemes) *)
        let (), t_decode =
          time_best (fun () ->
              Trace.Reader.iter_runs reader (fun _ _ _ _ _ -> ()))
        in
        let trace_sims, t_sim =
          time_best (fun () ->
              let sims =
                List.map (fun scheme -> Dynamic.create scheme ~n_sites) schemes
              in
              let hooks = List.map Dynamic.hook_batch sims in
              Trace.Reader.iter_runs reader (fun st tk rl pr n ->
                  List.iter (fun h -> h st tk rl pr n) hooks);
              sims)
        in
        let agree_with ref_sims sims =
          List.for_all2
            (fun a b ->
              Dynamic.correct a = Dynamic.correct b
              && Dynamic.incorrect a = Dynamic.incorrect b)
            ref_sims sims
        in
        let agree =
          agree_with interp_sims threaded_sims
          && agree_with interp_sims trace_sims
        in
        Printf.printf
          "  %-10s %9d ev  vm %6.3fs (threaded %6.3fs)  record %6.3fs  \
           sim %6.3fs (decode %6.3fs)  %5.1fx  identical %b\n"
          w.w_name
          (Trace.Writer.events writer)
          t_vm t_vm_threaded t_record t_sim t_decode (t_vm /. t_sim) agree;
        {
          tr_name = w.w_name;
          tr_events = Trace.Writer.events writer;
          tr_vm_s = t_vm;
          tr_vm_threaded_s = t_vm_threaded;
          tr_plain_interp_s = t_plain_interp;
          tr_plain_threaded_s = t_plain_threaded;
          tr_record_s = t_record;
          tr_decode_s = t_decode;
          tr_sim_s = t_sim;
          tr_identical = agree;
        })
      workloads
  in
  let geomean select =
    Fisher92_util.Stats.geomean (List.map select rows)
  in
  let g_interp = geomean (fun r -> r.tr_vm_s /. r.tr_sim_s) in
  let g_threaded = geomean (fun r -> r.tr_vm_threaded_s /. r.tr_sim_s) in
  let g_engine =
    geomean (fun r -> r.tr_plain_interp_s /. r.tr_plain_threaded_s)
  in
  Printf.printf "  geomean sim speedup over per-scheme VM: %.1fx\n" g_interp;
  Printf.printf
    "  geomean sim speedup over per-scheme threaded VM: %.1fx\n" g_threaded;
  Printf.printf "  geomean threaded-engine speedup (hookless run): %.2fx\n"
    g_engine;
  write_json "BENCH_trace.json"
    (J_obj
       [
         ("bench", J_str "tracebench");
         ("schemes", J_int (List.length schemes));
         ( "workloads",
           J_arr
             (List.map
                (fun r ->
                  J_obj
                    [
                      ("name", J_str r.tr_name);
                      ("events", J_int r.tr_events);
                      ("vm_s", J_num r.tr_vm_s);
                      ("vm_threaded_s", J_num r.tr_vm_threaded_s);
                      ("plain_interp_s", J_num r.tr_plain_interp_s);
                      ("plain_threaded_s", J_num r.tr_plain_threaded_s);
                      ("record_s", J_num r.tr_record_s);
                      ("decode_s", J_num r.tr_decode_s);
                      ("update_s", J_num (max 0. (r.tr_sim_s -. r.tr_decode_s)));
                      ("sim_s", J_num r.tr_sim_s);
                      ("speedup", J_num (r.tr_vm_s /. r.tr_sim_s));
                      ( "speedup_vs_threaded",
                        J_num (r.tr_vm_threaded_s /. r.tr_sim_s) );
                      ("identical", J_bool r.tr_identical);
                    ])
                rows) );
         ("geomean_speedup", J_num g_interp);
         ("geomean_speedup_vs_threaded", J_num g_threaded);
         ("geomean_engine_speedup", J_num g_engine);
       ])

(* ---------- ingest service load + recovery benchmark ---------- *)

let ingestbench domains =
  let module Service = Fisher92_ingest.Service in
  let module Delta = Fisher92_ingest.Delta in
  let module Client = Fisher92_ingest.Client in
  let module Db = Fisher92_profile.Db in
  let module Rng = Fisher92_util.Rng in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let prog = "compress" in
  let w = Fisher92_workloads.Registry.find prog in
  let ir = Fisher92.Study.compile_variant w in
  let n_sites = Fisher92_ir.Program.n_sites ir in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fisher92-ingestbench-%d" (Unix.getpid ()))
  in
  (* a fresh directory per run: recovery must start from our debris only *)
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  let cfg =
    {
      Service.c_dir = dir;
      c_program = prog;
      c_n_sites = n_sites;
      c_fingerprint = Fisher92_analysis.Fingerprint.program_hash ir;
      c_sitekeys = Fisher92_analysis.Fingerprint.site_keys ir;
      c_shards = None;
    }
  in
  let per_client = 64 in
  let entries_per_delta = 32 in
  let svc = Service.open_ cfg in
  (* N domains of synthetic clients, each submitting its own delta
     stream; latencies cover the full durable path (WAL append + fsync
     + sharded merge). *)
  let latencies = Array.make (domains * per_client) 0.0 in
  let synth rng d k =
    let entries =
      List.init entries_per_delta (fun i ->
          let site = ((i * 97) + (d * 13) + k) mod n_sites in
          let e = 1 + Rng.int rng 1000 in
          (site, e, Rng.int rng (e + 1)))
      (* distinct sites per delta: dedup via sorted uniq *)
      |> List.sort_uniq (fun (a, _, _) (b, _, _) -> compare a b)
    in
    Delta.make ~program:prog ~fingerprint:cfg.Service.c_fingerprint
      ~label:(Printf.sprintf "client%d" d) ~n_sites
      ~nonce:((d * per_client) + k)
      entries
  in
  let (), t_submit =
    time (fun () ->
        let spawned =
          List.init domains (fun d ->
              Domain.spawn (fun () ->
                  let rng = Rng.create (0x1ce5 + d) in
                  for k = 0 to per_client - 1 do
                    let delta = synth rng d k in
                    let t0 = Unix.gettimeofday () in
                    (match Client.submit ~rng svc delta with
                    | Service.Acked -> ()
                    | o -> failwith (Service.outcome_name o));
                    latencies.((d * per_client) + k) <-
                      Unix.gettimeofday () -. t0
                  done))
        in
        List.iter Domain.join spawned)
  in
  let total = domains * per_client in
  Array.sort compare latencies;
  let pct p = latencies.(min (total - 1) (p * total / 100)) in
  (* crash before compaction: recovery must replay the whole log *)
  let svc2, t_recover = time (fun () -> Service.open_ cfg) in
  let replayed = (Service.stats svc2).Service.st_replayed in
  let (), t_compact = time (fun () -> Service.compact svc2) in
  Service.close svc2;
  Service.close ~fold:false svc;
  let check_ok =
    match Db.load_file (Service.db_path ~dir) with
    | (_ : Db.t) -> true
    | exception _ -> false
  in
  Printf.printf
    "ingest load (%d domains x %d deltas x %d entries, fsync %s):\n"
    domains per_client entries_per_delta
    (if Fisher92_util.Env.fsync_enabled () then "on" else "off");
  Printf.printf "  submit wall clock:   %6.3fs  (%.0f deltas/s)\n" t_submit
    (float_of_int total /. t_submit);
  Printf.printf
    "  submit latency:      p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n"
    (pct 50 *. 1e3) (pct 95 *. 1e3) (pct 99 *. 1e3)
    (latencies.(total - 1) *. 1e3);
  Printf.printf "  recovery (replay %d): %6.3fs\n" replayed t_recover;
  Printf.printf "  compaction:          %6.3fs\n" t_compact;
  Printf.printf "  db strict load ok:   %b\n" check_ok;
  write_json "BENCH_ingest.json"
    (J_obj
       [
         ("bench", J_str "ingestbench");
         ("program", J_str prog);
         ("domains", J_int domains);
         ("deltas", J_int total);
         ("entries_per_delta", J_int entries_per_delta);
         ("fsync", J_bool (Fisher92_util.Env.fsync_enabled ()));
         ("submit_s", J_num t_submit);
         ("deltas_per_sec", J_num (float_of_int total /. t_submit));
         ("latency_p50_ms", J_num (pct 50 *. 1e3));
         ("latency_p95_ms", J_num (pct 95 *. 1e3));
         ("latency_p99_ms", J_num (pct 99 *. 1e3));
         ("latency_max_ms", J_num (latencies.(total - 1) *. 1e3));
         ("recovery_s", J_num t_recover);
         ("recovered_records", J_int replayed);
         ("compaction_s", J_num t_compact);
         ("db_check_ok", J_bool check_ok);
       ]);
  rm dir;
  if not check_ok then exit 1

(* ---------- bechamel timing micro-benchmarks ---------- *)

let bechamel_suite () =
  let open Bechamel in
  (* a small but non-trivial study: one FP and three C workloads *)
  let mini =
    lazy
      (Fisher92.Study.load
         ~workloads:
           [
             Fisher92_workloads.Registry.find "doduc";
             Fisher92_workloads.Registry.find "compress";
             Fisher92_workloads.Registry.find "uncompress";
             Fisher92_workloads.Registry.find "spiff";
           ]
         ())
  in
  let module E = Fisher92.Experiments in
  let bench name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      bench "study-load(doduc)" (fun () ->
          Fisher92.Study.load
            ~workloads:[ Fisher92_workloads.Registry.find "doduc" ]
            ());
      bench "table1(dead-code)" (fun () -> E.table1 (Lazy.force mini));
      bench "table3(self-ipb)" (fun () -> E.table3 (Lazy.force mini));
      bench "fig1(unpredicted)" (fun () -> E.fig1 (Lazy.force mini));
      bench "fig2(predicted)" (fun () -> E.fig2 (Lazy.force mini));
      bench "fig3(best-worst)" (fun () -> E.fig3 (Lazy.force mini));
      bench "taken(percent)" (fun () -> E.taken (Lazy.force mini));
      bench "combine(strategies)" (fun () -> E.combine (Lazy.force mini));
      bench "heuristics" (fun () -> E.heuristics (Lazy.force mini));
      bench "crossmode" (fun () -> E.crossmode (Lazy.force mini));
      bench "dynamic(1/2-bit)" (fun () -> E.dynamic (Lazy.force mini));
      bench "dynsim(trace)" (fun () -> E.dynsim (Lazy.force mini));
      bench "predictability" (fun () -> E.predictability (Lazy.force mini));
      bench "tournament(zoo)" (fun () -> E.tournament (Lazy.force mini));
      bench "h2p(hard-class)" (fun () -> E.h2p (Lazy.force mini));
      bench "inline-ablation" (fun () -> E.inline_ablation (Lazy.force mini));
      bench "gaps(distribution)" (fun () -> E.gaps (Lazy.force mini));
      bench "switchsort(reorder)" (fun () -> E.switchsort (Lazy.force mini));
      bench "static-proof" (fun () -> E.static_proof (Lazy.force mini));
      bench "brclass(doduc)" (fun () ->
          Fisher92_analysis.Brclass.classify
            (List.hd (Fisher92.Study.items (Lazy.force mini))).Fisher92.Study.ir);
    ]
  in
  let test = Test.make_grouped ~name:"fisher92" tests in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 50) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let raw = benchmark test in
  let results = analyze raw in
  print_endline "Bechamel wall-clock (monotonic ns per run):";
  let rows = ref [] in
  Hashtbl.iter (fun name ols -> rows := (name, ols) :: !rows) results;
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-36s %14.0f ns\n" name est
      | _ -> Printf.printf "  %-36s (no estimate)\n" name)
    (List.sort compare !rows)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let bech = List.mem "--bechamel" args in
  let timing = List.mem "--timing" args in
  let par = List.mem "--parbench" args in
  let tracing = List.mem "--tracebench" args in
  let ingest = List.mem "--ingestbench" args in
  let listing = List.mem "--list" args in
  let domains = ref None in
  let rec strip = function
    | [] -> []
    | "--domains" :: n :: rest -> (
      match int_of_string_opt n with
      | Some d when d >= 1 ->
        domains := Some d;
        strip rest
      | Some _ | None ->
        Printf.eprintf "--domains expects a positive integer, got %S\n" n;
        exit 2)
    | "--domains" :: [] ->
      Printf.eprintf "--domains expects a positive integer\n";
      exit 2
    | ( "--bechamel" | "--timing" | "--parbench" | "--tracebench"
      | "--ingestbench" | "--list" )
      :: rest ->
      strip rest
    | s :: rest -> s :: strip rest
  in
  let sections = strip args in
  if listing then begin
    ignore (registry ()); (* force the registrations before listing *)
    print_string (Fisher92.Experiment.list_table ());
    exit 0
  end;
  (match unknown_sections sections with
  | [] -> ()
  | bad ->
    Printf.eprintf "unknown section%s: %s; valid sections: %s\n"
      (match bad with [ _ ] -> "" | _ -> "s")
      (String.concat " " bad)
      (String.concat " " (valid_sections ()));
    exit 2);
  let sections = if sections = [] then valid_sections () else sections in
  let domains = !domains in
  if par then parbench (match domains with Some d -> d | None -> Fisher92_util.Pool.default_domains ())
  else if tracing then tracebench ()
  else if ingest then
    ingestbench
      (match domains with
      | Some d -> d
      | None -> min 4 (Fisher92_util.Pool.default_domains ()))
  else begin
    let t0 = Unix.gettimeofday () in
    let timings = ref None in
    let study =
      lazy
        (let s, tm = Fisher92.Study.load_timed ?domains () in
         timings := Some tm;
         s)
    in
    List.iter (run_section study) sections;
    (match (timing, !timings) with
    | true, Some tm -> print_string (Fisher92.Study.render_timings tm)
    | true, None ->
      print_endline "(no study was loaded; nothing to time)"
    | false, _ -> ());
    Printf.printf "\n[experiments completed in %.1fs]\n" (Unix.gettimeofday () -. t0);
    if bech then bechamel_suite ()
  end
