(* Command-line interface to the reproduction study.

   fisher92 list                        programs and datasets (Table 2)
   fisher92 run PROG DATASET            execute one pair, print counters
   fisher92 profile PROG                profile every dataset, dump the
                                        IFPROB database / directives
   fisher92 predict PROG TARGET         cross-predict one dataset from
                                        the others
   fisher92 experiments [SECTION...]    regenerate paper tables/figures
                                        (--list for the registry,
                                        --format=tsv for machine output)
   fisher92 db check|repair|migrate     verify / salvage / upgrade profile
                                        databases
   fisher92 trace record|info|sim       capture, inspect, and replay branch
                                        traces (trace-driven simulation)
   fisher92 serve PROG --dir DIR        crash-safe profile-ingest service
                                        (WAL + sharded merge + compaction)
   fisher92 submit PROG --dir DIR       run a dataset and spool its profile
                                        as an ingest delta
   fisher92 lint [PROG]                 IR lint (CFG + dataflow checks)
   fisher92 analyze PROG                static branch-proof classifications
   fisher92 disasm PROG                 dump the compiled IR
   fisher92 synth gen|charz|sweep       seeded synthetic workloads: generate,
                                        characterize, and sweep the grid
                                        behind the synthpool experiment *)

open Cmdliner
module Registry = Fisher92_workloads.Registry
module Workload = Fisher92_workloads.Workload
module Vm = Fisher92_vm.Vm
module Profile = Fisher92_profile.Profile
module Measure = Fisher92_metrics.Measure
module Table = Fisher92_report.Table

let compile w =
  Fisher92_minic.Compile.compile ~options:(Workload.compile_options w)
    w.Workload.w_program

let execute ir (d : Workload.dataset) =
  Vm.run ir ~iargs:d.ds_iargs ~fargs:d.ds_fargs ~arrays:d.ds_arrays

let find_workload name =
  match Registry.find name with
  | w -> w
  | exception Not_found ->
    Printf.eprintf "unknown program %S; try `fisher92 list`\n" name;
    exit 2

(* ---- list ---- *)

let list_cmd =
  let run () = print_string (Fisher92.Experiments.render_table2 ()) in
  Cmd.v (Cmd.info "list" ~doc:"Show the program sample base (paper Table 2)")
    Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let run prog dataset =
    let w = find_workload prog in
    let d =
      match Workload.dataset w dataset with
      | d -> d
      | exception Not_found ->
        Printf.eprintf "unknown dataset %S for %s\n" dataset prog;
        exit 2
    in
    let ir = compile w in
    let r = execute ir d in
    let m = Measure.of_result ~program:prog ~dataset r in
    Printf.printf "%s / %s\n" prog dataset;
    Printf.printf "  dynamic instructions:  %s\n" (Table.inum r.total);
    List.iter
      (fun kind ->
        let count = Vm.kind_count r kind in
        if count > 0 then
          Printf.printf "    %-8s %s\n"
            (Fisher92_ir.Insn.kind_name kind)
            (Table.inum count))
      Fisher92_ir.Insn.all_kinds;
    Printf.printf "  branch sites covered:  %d / %d\n"
      (Profile.covered_sites m.profile)
      (Profile.n_sites m.profile);
    Printf.printf "  %% branches taken:      %s\n" (Table.pct (Measure.percent_taken m));
    Printf.printf "  instrs/break (none):   %s\n" (Table.fnum (Measure.ipb_unpredicted m));
    Printf.printf "  instrs/break (self):   %s\n" (Table.fnum (Measure.ipb_self m));
    Printf.printf "  outputs (first 8):     %s\n"
      (String.concat " "
         (List.filteri (fun k _ -> k < 8) r.outputs
         |> List.map (function
              | Vm.Out_int k -> string_of_int k
              | Vm.Out_float x -> Printf.sprintf "%g" x)))
  in
  let prog = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  let dataset = Arg.(required & pos 1 (some string) None & info [] ~docv:"DATASET") in
  Cmd.v (Cmd.info "run" ~doc:"Execute one (program, dataset) pair on the simulator")
    Term.(const run $ prog $ dataset)

(* ---- profile ---- *)

let profile_cmd =
  let run prog directives output =
    let w = find_workload prog in
    let ir = compile w in
    let db =
      Fisher92_profile.Db.create ~program:prog
        ~n_sites:(Fisher92_ir.Program.n_sites ir)
    in
    List.iter
      (fun (d : Workload.dataset) ->
        let r = execute ir d in
        Fisher92_profile.Db.record db ~dataset:d.ds_name
          (Profile.of_run ~program:prog r))
      w.w_datasets;
    Fisher92_profile.Db.set_identity db
      ~fingerprint:(Fisher92_analysis.Fingerprint.program_hash ir)
      ~sitekeys:(Fisher92_analysis.Fingerprint.site_keys ir);
    let text =
      if directives then
        Fisher92_profile.Directive.render_all
          (Fisher92_profile.Directive.of_profile ir
             (Fisher92_profile.Db.accumulated db))
      else Fisher92_profile.Db.save db
    in
    match output with
    | None -> print_string text
    | Some path ->
      if directives then begin
        let oc = open_out path in
        output_string oc text;
        close_out oc
      end
      else Fisher92_profile.Db.save_file db path;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
  in
  let prog = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  let directives =
    Arg.(value & flag & info [ "directives" ] ~doc:"Print IFPROB directives instead of the raw database")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to a file instead of stdout")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile every dataset and print the IFPROBBER database")
    Term.(const run $ prog $ directives $ output)

(* ---- predict ---- *)

let predict_cmd =
  let run prog target =
    let w = find_workload prog in
    let ir = compile w in
    let runs =
      List.map
        (fun (d : Workload.dataset) ->
          Measure.of_result ~program:prog ~dataset:d.ds_name (execute ir d))
        w.w_datasets
    in
    let entries = Fisher92_metrics.Cross.analyze runs in
    let selected =
      match target with
      | None -> entries
      | Some t -> List.filter (fun e -> e.Fisher92_metrics.Cross.target = t) entries
    in
    if selected = [] then begin
      Printf.eprintf "no such dataset\n";
      exit 2
    end;
    print_string
      (Table.render
         ~header:[ "TARGET"; "SELF I/B"; "OTHERS I/B"; "BEST"; "WORST" ]
         (List.map
            (fun (e : Fisher92_metrics.Cross.entry) ->
              [
                e.target;
                Table.fnum e.self_ipb;
                (match e.others_ipb with Some v -> Table.fnum v | None -> "-");
                (match e.best with
                | Some (n, q) -> Printf.sprintf "%s (%.0f%%)" n (100.0 *. q)
                | None -> "-");
                (match e.worst with
                | Some (n, q) -> Printf.sprintf "%s (%.0f%%)" n (100.0 *. q)
                | None -> "-");
              ])
            selected))
  in
  let prog = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  let target = Arg.(value & pos 1 (some string) None & info [] ~docv:"DATASET") in
  Cmd.v
    (Cmd.info "predict" ~doc:"Cross-dataset prediction summary for one program")
    Term.(const run $ prog $ target)

(* ---- experiments ---- *)

let experiments_cmd =
  let module Experiment = Fisher92.Experiment in
  let run sections listing format timing domains =
    (* the registry; going through [Sweep.registry] (not
       [Experiment.all]) forces both the core and the synth
       registrations to be linked *)
    let registry = Fisher92_synth.Sweep.registry () in
    if listing then print_string (Experiment.list_table ())
    else begin
      let ids = List.map (fun e -> e.Experiment.e_id) registry in
      (* validate the whole request before simulating anything, so a typo
         in a mixed valid/invalid list costs nothing *)
      (match List.filter (fun s -> not (List.mem s ids)) sections with
      | [] -> ()
      | bad ->
        Printf.eprintf "unknown section%s: %s; valid sections: %s\n"
          (match bad with [ _ ] -> "" | _ -> "s")
          (String.concat " " bad)
          (String.concat " " ids);
        exit 2);
      let timings = ref None in
      let study =
        lazy
          (let s, tm = Fisher92.Study.load_timed ?domains () in
           timings := Some tm;
           s)
      in
      let selected =
        match sections with
        | [] -> registry
        | names ->
          List.map
            (fun s ->
              match Experiment.find s with
              | Some e -> e
              | None -> assert false (* validated above *))
            names
      in
      List.iter
        (fun e ->
          let text =
            match format with
            | `Text -> Experiment.render_text e study
            | `Tsv -> Experiment.render_tsv e study
          in
          print_endline text)
        selected;
      match (timing, !timings) with
      | true, Some tm -> print_string (Fisher92.Study.render_timings tm)
      | true, None -> print_endline "(no study was loaded; nothing to time)"
      | false, _ -> ()
    end
  in
  let sections = Arg.(value & pos_all string [] & info [] ~docv:"SECTION") in
  let listing =
    Arg.(value & flag
         & info [ "list" ]
             ~doc:"List the registered experiments (section name, paper \
                   reference, description) and exit")
  in
  let format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("tsv", `Tsv) ]) `Text
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"Output format: $(b,text) (the paper-style tables and \
                   figures) or $(b,tsv) (one tab-separated header line \
                   plus data rows, for downstream plotting)")
  in
  let timing =
    Arg.(value & flag
         & info [ "timing" ]
             ~doc:"Print the per-workload compile/simulate/cache-hit timing \
                   table after the experiments")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Run the study over $(docv) domains (default: the \
                   machine's recommended domain count, or \
                   FISHER92_DOMAINS)")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures (all, or named sections)")
    Term.(const run $ sections $ listing $ format $ timing $ domains)

(* ---- db ---- *)

let db_cmd =
  let module Db = Fisher92_profile.Db in
  let module Remap = Fisher92_predict.Remap in
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the result here instead of overwriting FILE")
  in
  let check =
    let run file prog =
      let text = read_file file in
      let strict =
        match Db.load text with
        | _ -> None
        | exception Failure msg -> Some msg
      in
      (match strict with
      | None -> Printf.printf "%s: strict load ok\n" file
      | Some msg -> Printf.printf "%s: strict load FAILED: %s\n" file msg);
      let db, report = Db.load_lenient text in
      print_string (Db.render_report report);
      (match prog with
      | None -> ()
      | Some p ->
        let w = find_workload p in
        let ir = compile w in
        let chain = Remap.plan ir db in
        let e, r, pf, h, d = Remap.counts chain in
        Printf.printf "against %s (%d sites): %s, %s\n" p
          (Fisher92_ir.Program.n_sites ir)
          (if chain.Remap.r_stale then "STALE" else "fresh")
          (if chain.Remap.r_verified then "fingerprinted"
           else "no fingerprint");
        Printf.printf
          "  provenance: %d exact, %d remapped, %d proof, %d heuristic, \
           %d default\n"
          e r pf h d);
      if strict <> None || not (Db.clean report) then exit 1
    in
    let prog =
      Arg.(value & opt (some string) None & info [ "program" ] ~docv:"PROGRAM"
             ~doc:"Also report prediction provenance against this workload's \
                   current build")
    in
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Verify a profile database: strict load, salvage report, and \
            (with --program) staleness/provenance against the current build. \
            Exits 1 unless the file is fully intact.")
      Term.(const run $ file_arg $ prog)
  in
  let repair =
    let run file output =
      let db, report = Db.load_lenient (read_file file) in
      print_string (Db.render_report report);
      let dest = match output with Some o -> o | None -> file in
      Db.save_file db dest;
      Printf.printf "wrote %s (%d datasets kept)\n" dest
        (List.length (Db.datasets db))
    in
    Cmd.v
      (Cmd.info "repair"
         ~doc:
           "Salvage whatever checksum-verified sections survive in a damaged \
            database and rewrite it as clean v2.")
      Term.(const run $ file_arg $ out_arg)
  in
  let migrate =
    let run file output =
      let db = Db.load_file file in
      let dest = match output with Some o -> o | None -> file in
      Db.save_file db dest;
      Printf.printf "wrote %s (v2, %d datasets)\n" dest
        (List.length (Db.datasets db))
    in
    Cmd.v
      (Cmd.info "migrate"
         ~doc:
           "Strict-load a v1 or v2 database and rewrite it in the v2 format. \
            Idempotent: migrating a v2 file reproduces it byte for byte.")
      Term.(const run $ file_arg $ out_arg)
  in
  Cmd.group
    (Cmd.info "db"
       ~doc:"Inspect, salvage, and migrate IFPROB profile databases")
    [ check; repair; migrate ]

(* ---- trace ---- *)

let trace_cmd =
  let module Trace = Fisher92_trace.Trace in
  let module Tracing = Fisher92.Tracing in
  let module Dynamic = Fisher92_predict.Dynamic in
  let resolve prog dataset =
    let w = find_workload prog in
    let d =
      match dataset with
      | None -> List.hd w.Workload.w_datasets
      | Some name -> (
        match Workload.dataset w name with
        | d -> d
        | exception Not_found ->
          Printf.eprintf "unknown dataset %S for %s\n" name prog;
          exit 2)
    in
    (w, compile w, d)
  in
  let prog_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM")
  in
  let dataset_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"DATASET"
           ~doc:"Dataset name (default: the workload's first)")
  in
  let describe w (d : Workload.dataset) (m : Trace.meta) ~source =
    Printf.printf "%s / %s: %s dynamic branches over %d sites (%s)\n"
      w.Workload.w_name d.ds_name (Table.inum m.Trace.t_events)
      m.Trace.t_n_sites source;
    Printf.printf "  fingerprint: %s  dataset hash: %s\n" m.Trace.t_fingerprint
      m.Trace.t_dshash
  in
  let record =
    let run prog dataset output =
      let w, ir, d = resolve prog dataset in
      let wr = Tracing.record ~ir ~program:w.w_name d in
      Trace.Store.save wr;
      let text = Trace.Writer.render wr in
      (match output with
      | None -> ()
      | Some path ->
        let oc = open_out_bin path in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length text));
      let r = Trace.Reader.of_string text in
      describe w d (Trace.Reader.meta r) ~source:"captured";
      let events = max 1 (Trace.Writer.events wr) in
      Printf.printf "  payload: %d bytes = %.2f bits/branch (file: %d bytes)\n"
        (Trace.Reader.payload_bytes r)
        (8.0 *. float_of_int (Trace.Reader.payload_bytes r)
        /. float_of_int events)
        (String.length text);
      if Trace.Store.enabled () then
        Printf.printf "  stored in %s\n" (Trace.Store.dir ())
    in
    let output =
      Arg.(value & opt (some string) None & info [ "o"; "output" ]
             ~docv:"FILE" ~doc:"Also write the trace file here")
    in
    Cmd.v
      (Cmd.info "record"
         ~doc:
           "Execute one (program, dataset) pair with the trace recorder \
            attached and store the branch trace.")
      Term.(const run $ prog_arg $ dataset_arg $ output)
  in
  let info_cmd =
    let run prog dataset =
      let w, ir, d = resolve prog dataset in
      let ob = Tracing.obtain ~ir ~program:w.w_name d in
      let m = Trace.Reader.meta ob.Tracing.reader in
      describe w d m
        ~source:(if ob.Tracing.from_store then "from store" else "captured");
      let enc, _ = Trace.Reader.counts ob.Tracing.reader in
      let covered = Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 enc in
      Printf.printf "  sites covered: %d / %d\n" covered m.Trace.t_n_sites;
      Printf.printf "  payload: %d bytes = %.2f bits/branch\n"
        (Trace.Reader.payload_bytes ob.Tracing.reader)
        (8.0 *. float_of_int (Trace.Reader.payload_bytes ob.Tracing.reader)
        /. float_of_int (max 1 m.Trace.t_events))
    in
    Cmd.v
      (Cmd.info "info"
         ~doc:
           "Show a trace's metadata and compression (loads the stored \
            trace, capturing it first if absent or stale).")
      Term.(const run $ prog_arg $ dataset_arg)
  in
  let sim =
    let module Predictor = Fisher92_predict.Predictor in
    let run prog dataset warm seed scheme_names =
      let w, ir, d = resolve prog dataset in
      let schemes =
        match scheme_names with
        | [] -> List.map (fun z -> z.Predictor.d_scheme) (Predictor.zoo ())
        | names ->
          List.map
            (fun name ->
              match Predictor.find_dynamic name with
              | Some z -> z.Predictor.d_scheme
              | None ->
                Printf.eprintf "unknown scheme %S; registered: %s\n" name
                  (String.concat ", "
                     (List.map
                        (fun z -> z.Predictor.d_name)
                        (Predictor.zoo ())));
                exit 2)
            names
      in
      let ob = Tracing.obtain ~ir ~program:w.w_name d in
      let m = Trace.Reader.meta ob.Tracing.reader in
      describe w d m
        ~source:(if ob.Tracing.from_store then "from store" else "captured");
      if warm then
        print_string "  (warm: counters trained by one replay, then measured)\n";
      let warm_pred =
        if seed then begin
          print_string
            "  (seed: counters start from the accumulated profile via the \
             remap chain)\n";
          let loaded =
            List.hd (Fisher92.Study.items (Fisher92.Study.load ~workloads:[ w ] ()))
          in
          Some (Tracing.warm_prediction loaded)
        end
        else None
      in
      let n_sites = Fisher92_ir.Program.n_sites ir in
      let replay = Trace.Reader.iter_runs ob.Tracing.reader in
      let rows =
        List.map
          (fun scheme ->
            let t =
              Dynamic.simulate_runs ?warm:warm_pred scheme ~n_sites replay
            in
            if warm then begin
              Dynamic.reset_counts t;
              replay (Dynamic.hook_batch t)
            end;
            [
              Dynamic.scheme_name scheme;
              Table.inum (Dynamic.correct t);
              Table.inum (Dynamic.incorrect t);
              Table.pct (Dynamic.percent_correct t);
            ])
          schemes
      in
      print_string
        (Table.render
           ~header:[ "SCHEME"; "CORRECT"; "INCORRECT"; "%CORRECT" ]
           rows)
    in
    let warm =
      Arg.(value & flag & info [ "warm" ]
             ~doc:
               "Measure steady-state accuracy: replay the trace once to \
                train each predictor, reset the tallies, and measure a \
                second replay (default is a cold predictor).")
    in
    let seed =
      Arg.(value & flag & info [ "seed" ]
             ~doc:
               "Profile-warm the predictors: seed counter/choice tables \
                from the accumulated profile of every dataset (through the \
                remap degradation chain) before the measured replay.  \
                Composes with $(b,--warm).")
    in
    let schemes =
      Arg.(value & opt_all string [] & info [ "scheme" ] ~docv:"NAME"
             ~doc:
               "Simulate only this scheme (repeatable); default is the \
                whole registered zoo.  See `fisher92 trace sim --help` for \
                the roster.")
    in
    Cmd.v
      (Cmd.info "sim"
         ~doc:
           "Replay a branch trace through the dynamic predictor zoo \
            (smith, 2-bit, 2-level, gshare, bimode, tage) without \
            re-executing the program.")
      Term.(const run $ prog_arg $ dataset_arg $ warm $ seed $ schemes)
  in
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Record, inspect, and simulate from branch traces")
    [ record; info_cmd; sim ]

(* ---- hotspots ---- *)

let hotspots_cmd =
  let run prog dataset top =
    let w = find_workload prog in
    let d =
      match Workload.dataset w dataset with
      | d -> d
      | exception Not_found ->
        Printf.eprintf "unknown dataset %S for %s\n" dataset prog;
        exit 2
    in
    let ir = compile w in
    let r = execute ir d in
    let sites =
      List.init (Array.length r.site_encountered) (fun s ->
          (r.site_encountered.(s), r.site_taken.(s), s))
      |> List.sort compare |> List.rev
    in
    print_string
      (Table.render
         ~header:[ "SITE"; "EXECUTED"; "TAKEN"; "% TAKEN"; "SHARE" ]
         (List.filteri (fun k _ -> k < top) sites
         |> List.map (fun (enc, taken, s) ->
                [
                  Fisher92_ir.Program.site_label ir s;
                  Table.inum enc;
                  Table.inum taken;
                  Table.pct (Fisher92_util.Stats.percent taken (max enc 1));
                  Table.pct
                    (Fisher92_util.Stats.percent enc
                       (Fisher92_vm.Vm.conditional_branches r));
                ])))
  in
  let prog = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  let dataset = Arg.(required & pos 1 (some string) None & info [] ~docv:"DATASET") in
  let top =
    Arg.(value & opt int 15 & info [ "n"; "top" ] ~docv:"N" ~doc:"How many sites to show")
  in
  Cmd.v
    (Cmd.info "hotspots" ~doc:"Show the busiest branch sites of one run")
    Term.(const run $ prog $ dataset $ top)

(* ---- lint ---- *)

let lint_cmd =
  let module Lint = Fisher92_analysis.Lint in
  let run prog format =
    let workloads =
      match prog with None -> Registry.all () | Some p -> [ find_workload p ]
    in
    if format = `Tsv then
      print_string "program\tfunction\tpc\tkind\tmessage\n";
    let dirty = ref 0 in
    List.iter
      (fun (w : Workload.t) ->
        let ir = compile w in
        let findings = Lint.check ir in
        if findings <> [] then incr dirty;
        match format with
        | `Text -> print_string (Lint.render ir findings)
        | `Tsv ->
          List.iter
            (fun (f : Lint.finding) ->
              Printf.printf "%s\t%s\t%d\t%s\t%s\n" ir.Fisher92_ir.Program.pname
                f.Lint.f_func f.Lint.f_pc (Lint.kind_name f.Lint.f_kind)
                f.Lint.f_message)
            findings)
      workloads;
    if !dirty > 0 then exit 1
  in
  let prog = Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("tsv", `Tsv) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,text) (per-program reports) or $(b,tsv) \
             (one tab-separated header line, then one row per finding).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the IR lint (unreachable code, use-before-def, dead stores, \
          infinite loops, proof-backed constant branches and contradictory \
          guards) on one workload, or on every registered workload. Exits 1 \
          if any program has findings.")
    Term.(const run $ prog $ format)

(* ---- analyze ---- *)

let analyze_cmd =
  let module B = Fisher92_analysis.Brclass in
  let run prog format show_unknown =
    let w = find_workload prog in
    let ir = compile w in
    let classes = (B.classify ir).B.classes in
    let pt, pn, lb, un = B.counts { B.classes } in
    let source_name = function
      | B.Src_const -> "sccp"
      | B.Src_range -> "range"
      | B.Src_loop -> "loop"
      | B.Src_none -> "-"
    in
    let rows =
      List.filteri (fun _ _ -> true)
        (Array.to_list
           (Array.mapi
              (fun s (sc : B.site_class) ->
                let site = ir.Fisher92_ir.Program.sites.(s) in
                ( s,
                  ir.Fisher92_ir.Program.funcs.(site.Fisher92_ir.Program.s_func)
                    .Fisher92_ir.Program.fname,
                  site.Fisher92_ir.Program.s_pc,
                  sc ))
              classes))
    in
    let rows =
      if show_unknown then rows
      else List.filter (fun (_, _, _, sc) -> sc.B.sc_cls <> B.Unknown) rows
    in
    match format with
    | `Tsv ->
      print_string "program\tsite\tfunction\tpc\tclass\tsource\tdetail\n";
      List.iter
        (fun (s, fname, pc, (sc : B.site_class)) ->
          Printf.printf "%s\t%d\t%s\t%d\t%s\t%s\t%s\n" w.Workload.w_name s
            fname pc (B.cls_name sc.B.sc_cls) (source_name sc.B.sc_source)
            sc.B.sc_detail)
        rows
    | `Text ->
      Printf.printf
        "%s: %d sites — %d proved taken, %d proved not-taken, %d \
         loop-bounded, %d unknown\n"
        w.Workload.w_name (Array.length classes) pt pn lb un;
      if rows <> [] then
        print_string
          (Table.render
             ~header:[ "SITE"; "LABEL"; "PC"; "CLASS"; "SOURCE"; "DETAIL" ]
             (List.map
                (fun (s, fname, pc, (sc : B.site_class)) ->
                  [
                    string_of_int s;
                    fname;
                    string_of_int pc;
                    B.cls_name sc.B.sc_cls;
                    source_name sc.B.sc_source;
                    sc.B.sc_detail;
                  ])
                rows))
  in
  let prog = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("tsv", `Tsv) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,text) (summary plus a site table) or \
             $(b,tsv) (one tab-separated header line, then one row per \
             site).")
  in
  let show_unknown =
    Arg.(
      value & flag
      & info [ "unknown" ]
          ~doc:"Also list sites the analysis could not classify.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Classify a workload's conditional branches with the static \
          branch-proof pass (SCCP + value ranges + counted-loop trip \
          bounds) and render the per-site verdicts.")
    Term.(const run $ prog $ format $ show_unknown)

(* ---- serve / submit: the crash-safe profile-ingest service ---- *)

let ingest_config ~dir ~shards prog ir =
  {
    Fisher92_ingest.Service.c_dir = dir;
    c_program = prog;
    c_n_sites = Fisher92_ir.Program.n_sites ir;
    c_fingerprint = Fisher92_analysis.Fingerprint.program_hash ir;
    c_sitekeys = Fisher92_analysis.Fingerprint.site_keys ir;
    c_shards = shards;
  }

let serve_cmd =
  let module S = Fisher92_ingest.Service in
  let run prog dir rounds interval shards =
    let w = find_workload prog in
    let ir = compile w in
    let svc = S.open_ (ingest_config ~dir ~shards prog ir) in
    List.iter (fun n -> Printf.printf "note: %s\n" n) (S.notes svc);
    for round = 1 to rounds do
      if round > 1 then Unix.sleepf interval;
      let d = S.drain_spool svc in
      Printf.printf "round %d: %d acked, %d duplicate, %d quarantined\n%!"
        round d.S.dr_acked d.S.dr_duplicates d.S.dr_quarantined;
      S.compact svc
    done;
    S.close svc;
    let st = S.stats svc in
    Printf.printf
      "served: %d accepted (%d remapped, %d entries dropped), %d \
       duplicates, %d quarantined, %d replayed, %d compactions\n"
      st.S.st_accepted st.S.st_remapped st.S.st_dropped_entries
      st.S.st_duplicates st.S.st_quarantined st.S.st_replayed
      st.S.st_compactions;
    Printf.printf "database: %s (generation %d)\n" (S.db_path ~dir)
      (Fisher92_profile.Db.generation (S.base_db svc))
  in
  let prog = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  let dir =
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Service directory (database, WAL, spool, quarantine)")
  in
  let rounds =
    Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"N"
           ~doc:"Drain-and-compact rounds to run (default 1: one-shot)")
  in
  let interval =
    Arg.(value & opt float 0.5 & info [ "interval" ] ~docv:"SECS"
           ~doc:"Sleep between rounds")
  in
  let shards =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
           ~doc:"Merge shard count (default: $(b,FISHER92_SHARDS))")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-safe profile-ingest service: recover (salvage \
          database, replay WAL), drain spooled deltas, compact into the \
          v2 database")
    Term.(const run $ prog $ dir $ rounds $ interval $ shards)

let submit_cmd =
  let run prog dir dataset label nonce =
    let w = find_workload prog in
    let ir = compile w in
    let d =
      let name =
        match dataset with
        | Some n -> n
        | None -> (List.hd w.Workload.w_datasets).ds_name
      in
      match Workload.dataset w name with
      | d -> d
      | exception Not_found ->
        Printf.eprintf "unknown dataset %S for %s\n" name prog;
        exit 2
    in
    let r = execute ir d in
    let delta =
      Fisher92_ingest.Delta.of_profile
        ~fingerprint:(Fisher92_analysis.Fingerprint.program_hash ir)
        ~label:(Option.value label ~default:d.ds_name)
        ~keys:(Fisher92_analysis.Fingerprint.site_keys ir)
        ~nonce
        (Profile.of_run ~program:prog r)
    in
    let rng = Fisher92_util.Rng.create (nonce + 7) in
    let path = Fisher92_ingest.Client.spool_submit ~rng ~dir delta in
    Printf.printf "spooled %s (id %s, %d site entries)\n" path
      delta.Fisher92_ingest.Delta.d_id
      (Array.length delta.Fisher92_ingest.Delta.d_sites)
  in
  let prog = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  let dir =
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Service directory (the delta lands in its spool)")
  in
  let dataset =
    Arg.(value & opt (some string) None & info [ "dataset" ] ~docv:"NAME"
           ~doc:"Dataset to run and submit (default: the workload's first)")
  in
  let label =
    Arg.(value & opt (some string) None & info [ "label" ] ~docv:"NAME"
           ~doc:"Dataset bucket in the pool database (default: the dataset)")
  in
  let nonce =
    Arg.(value & opt int 0 & info [ "nonce" ] ~docv:"N"
           ~doc:"Submission nonce: same counters + same nonce = same \
                 delta id (an idempotent retry)")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Run one (program, dataset) pair and spool its profile as an \
          ingest delta for $(b,fisher92 serve)")
    Term.(const run $ prog $ dir $ dataset $ label $ nonce)

(* ---- disasm ---- *)

let disasm_cmd =
  let run prog =
    let w = find_workload prog in
    print_string (Fisher92_ir.Pretty.program_to_string (compile w))
  in
  let prog = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  Cmd.v (Cmd.info "disasm" ~doc:"Dump a workload's compiled IR")
    Term.(const run $ prog)

(* ---- synth ---- *)

module Gen = Fisher92_synth.Gen
module Charz = Fisher92_synth.Charz
module Sweep = Fisher92_synth.Sweep
module Curated = Fisher92_synth.Curated

let rec ensure_dir d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let write_source dir (w : Workload.t) =
  ensure_dir dir;
  let path = Filename.concat dir (w.w_name ^ ".mc") in
  let oc = open_out_bin path in
  output_string oc (Fisher92_minic.Pp.program_to_string w.w_program);
  close_out oc;
  path

(* The generator's well-formedness gate, as the CI smoke exercises it:
   compile, then lint; any finding (or compile failure) is a generator
   bug. *)
let gate (w : Workload.t) =
  let module Lint = Fisher92_analysis.Lint in
  match compile w with
  | exception e -> Error (Printexc.to_string e)
  | ir -> (
    match Lint.check ir with
    | [] -> Ok ()
    | findings ->
      Error
        (String.concat "; "
           (List.map (fun (f : Lint.finding) -> f.Lint.f_message) findings)))

let synth_gen_cmd =
  let run seed count template out =
    let dir =
      match out with Some d -> d | None -> Fisher92_util.Env.synth_dir ()
    in
    let failures = ref 0 in
    let rows =
      List.init count (fun k ->
          let tmpl =
            match template with
            | Some t -> t
            | None ->
              List.nth Gen.all_templates (k mod List.length Gen.all_templates)
          in
          let params = { Gen.default_params with gp_template = tmpl } in
          let sd = seed + k in
          let w = Gen.generate params ~seed:sd in
          let status =
            match gate w with
            | Ok () -> "ok"
            | Error msg ->
              incr failures;
              "FAIL: " ^ msg
          in
          let path = write_source dir w in
          [
            w.Workload.w_name; string_of_int sd; Gen.template_name tmpl;
            status; path;
          ])
    in
    print_string
      (Table.render ~header:[ "NAME"; "SEED"; "TEMPLATE"; "LINT"; "SOURCE" ]
         rows);
    if !failures > 0 then begin
      Printf.eprintf "%d of %d generated programs failed the gate\n" !failures
        count;
      exit 1
    end
  in
  let seed =
    Arg.(value & opt int Sweep.default_seed
         & info [ "seed" ] ~docv:"N"
             ~doc:"Base seed; program $(i,k) of the batch uses seed N+k")
  in
  let count =
    Arg.(value & opt int 1
         & info [ "count" ] ~docv:"K" ~doc:"How many programs to generate")
  in
  let template =
    let tconv =
      Arg.conv
        ( (fun s ->
            match Gen.template_of_string s with
            | Some t -> Ok t
            | None -> Error (`Msg (Printf.sprintf "unknown template %S" s))),
          fun fmt t -> Format.pp_print_string fmt (Gen.template_name t) )
    in
    Arg.(value & opt (some tconv) None
         & info [ "template" ] ~docv:"TEMPLATE"
             ~doc:"Generate only this template (biased, periodic, mixed, \
                   adversarial); default cycles through all four")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"DIR"
             ~doc:"Directory for the emitted .mc sources (default: \
                   FISHER92_SYNTH_DIR)")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate seeded synthetic programs, run each through the \
          compile+lint well-formedness gate, and write their MiniC sources. \
          Exits 1 if any program fails the gate.")
    Term.(const run $ seed $ count $ template $ out)

let synth_charz_cmd =
  let run progs domains =
    Curated.ensure_registered ();
    let workloads =
      match progs with
      | [] -> Curated.all ()
      | names -> List.map find_workload names
    in
    let study = Fisher92.Study.load ~workloads ?domains () in
    let rows =
      List.map
        (fun (l : Fisher92.Study.loaded) ->
          Charz.row ~name:l.workload.Workload.w_name (Charz.characterize l))
        (Fisher92.Study.items study)
    in
    print_string (Table.render ~header:Charz.header rows)
  in
  let progs = Arg.(value & pos_all string [] & info [] ~docv:"PROGRAM") in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N" ~doc:"Study worker domains")
  in
  Cmd.v
    (Cmd.info "charz"
       ~doc:
         "Characterize workloads (site counts, skew, entropy, static floor, \
          gshare recovery, H2P share, class). Defaults to the curated \
          synthetic set; any registered workload name is accepted.")
    Term.(const run $ progs $ domains)

let synth_sweep_cmd =
  let run seed variants domains cache format =
    let items =
      Sweep.run ?domains ~cache ~items:(Sweep.grid ~variants ~seed ()) ()
    in
    match format with
    | `Text -> print_string (Sweep.render items)
    | `Tsv ->
      print_string
        "name\tseed\ttemplate\tbias\tshift\tclass\tsites\tcovered\tdyn\t\
         entropy\tskew\tfloor_pct\tgshare_pct\th2p_share\theur_cov_pct\t\
         self_mr\tcross_mr\theur_mr\tproved\n";
      List.iter
        (fun (it : Sweep.item) ->
          let p = it.it_point.pt_params in
          let c = it.it_charz in
          Printf.printf
            "%s\t%d\t%s\t%d\t%d\t%s\t%d\t%d\t%d\t%.4f\t%.4f\t%.3f\t%.3f\t\
             %.4f\t%.3f\t%.3f\t%.3f\t%.3f\t%d\n"
            it.it_point.pt_name it.it_point.pt_seed
            (Gen.template_name p.Gen.gp_template)
            p.Gen.gp_bias p.Gen.gp_shift
            (Charz.cls_name c.Charz.ch_class)
            c.Charz.ch_sites c.Charz.ch_covered c.Charz.ch_dyn
            c.Charz.ch_entropy c.Charz.ch_skew c.Charz.ch_floor_pct
            c.Charz.ch_gshare_pct c.Charz.ch_h2p_share c.Charz.ch_heur_pct
            it.it_self_mr it.it_cross_mr it.it_heur_mr it.it_proved)
        items
  in
  let seed =
    Arg.(value & opt int Sweep.default_seed
         & info [ "seed" ] ~docv:"N" ~doc:"Grid seed")
  in
  let variants =
    Arg.(value & opt int 5
         & info [ "variants" ] ~docv:"V"
             ~doc:"Structural variants per (template, bias, shift) cell")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N" ~doc:"Worker domains for the sweep")
  in
  let cache =
    Arg.(value & opt bool true
         & info [ "cache" ] ~docv:"BOOL"
             ~doc:"Persist compiled runs through the study cache")
  in
  let format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("tsv", `Tsv) ]) `Text
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"$(b,text) (the synthpool tables) or $(b,tsv) (one row \
                   per grid point)")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run the full generator sweep: fan the parameter grid over the \
          domain pool, characterize every workload, race the predictor \
          roster, and print the per-class summary (or per-point TSV). \
          Deterministic for a given seed, regardless of domain count and \
          cache state.")
    Term.(const run $ seed $ variants $ domains $ cache $ format)

let synth_curated_cmd =
  let run out =
    let failures = ref 0 in
    List.iter
      (fun (w : Workload.t) ->
        (match gate w with
        | Ok () -> ()
        | Error msg ->
          incr failures;
          Printf.eprintf "%s: %s\n" w.w_name msg);
        let path = write_source out w in
        Printf.printf "wrote %s\n" path)
      (Curated.all ());
    if !failures > 0 then exit 1
  in
  let out =
    Arg.(value & opt string "examples/synth"
         & info [ "o"; "out" ] ~docv:"DIR"
             ~doc:"Directory for the curated .mc sources")
  in
  Cmd.v
    (Cmd.info "curated"
       ~doc:
         "Regenerate the curated synthetic workloads' MiniC sources (the \
          committed examples/synth/*.mc); CI diffs a fresh generation \
          against the committed files.")
    Term.(const run $ out)

let synth_cmd =
  Cmd.group
    (Cmd.info "synth"
       ~doc:
         "Seeded synthetic-workload tooling: generate programs, \
          characterize their branch predictability, and run the full \
          sweep behind the synthpool experiment")
    [ synth_gen_cmd; synth_charz_cmd; synth_sweep_cmd; synth_curated_cmd ]

let () =
  let info =
    Cmd.info "fisher92" ~version:"1.0.0"
      ~doc:
        "Reproduction of Fisher & Freudenberger, 'Predicting Conditional \
         Branch Directions From Previous Runs of a Program' (ASPLOS 1992)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; profile_cmd; predict_cmd; experiments_cmd;
            db_cmd; trace_cmd; hotspots_cmd; lint_cmd; analyze_cmd;
            serve_cmd; submit_cmd; disasm_cmd; synth_cmd ]))
